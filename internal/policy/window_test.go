package policy

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
)

// conflictRefs alternates two blocks that map to the same line in a 64B
// cache, so warmup and steady-state windows differ.
func conflictRefs(n int) []trace.Ref {
	refs := make([]trace.Ref, n)
	for i := range refs {
		if i%2 == 1 {
			refs[i] = trace.Ref{Addr: 64}
		}
	}
	return refs
}

// TestWindowValidation pins the warmup guard: a window that leaves
// nothing to measure is an error, not a silently clamped full-stream
// run.
func TestWindowValidation(t *testing.T) {
	cases := []struct {
		warmup, n int
		ok        bool
	}{
		{0, 100, true},
		{1, 100, true},
		{99, 100, true},
		{100, 100, false}, // consumes the whole stream
		{101, 100, false},
		{-1, 100, false},
		{0, 0, true}, // no warmup requested: empty stream is the caller's problem
	}
	for _, c := range cases {
		sim := cache.MustDirectMapped(cache.DM(64, 4))
		_, err := Window(sim, conflictRefs(c.n), c.warmup)
		if (err == nil) != c.ok {
			t.Errorf("Window(warmup=%d, n=%d) = %v, want ok=%v", c.warmup, c.n, err, c.ok)
		}
	}
}

// TestWindowStats checks window stats equal full-stream stats minus the
// stats a fresh simulator accumulates over just the warmup prefix
// (deterministic simulators make the snapshot reproducible).
func TestWindowStats(t *testing.T) {
	geom := cache.DM(64, 4)
	refs := conflictRefs(200)
	const warmup = 37

	full := cache.MustDirectMapped(geom)
	cache.RunRefs(full, refs)
	prefix := cache.MustDirectMapped(geom)
	cache.RunRefs(prefix, refs[:warmup])

	m, err := Window(cache.MustDirectMapped(geom), refs, warmup)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	if want := full.Stats().Sub(prefix.Stats()); m.Stats != want {
		t.Errorf("window stats = %+v, want %+v", m.Stats, want)
	}
	if m.Stats.Accesses != uint64(len(refs)-warmup) {
		t.Errorf("window accesses = %d, want %d", m.Stats.Accesses, len(refs)-warmup)
	}
	if m.Extras != nil {
		t.Errorf("uninstrumented simulator returned extras %+v", m.Extras)
	}
}

// TestWindowExtras checks the policy counters subtract over the same
// window as the headline stats — a steady-state report must not mix
// full-stream counters with warmup-subtracted stats.
func TestWindowExtras(t *testing.T) {
	geom := cache.DM(64, 4)
	refs := conflictRefs(400)
	const warmup = 100

	sim := MustBuild("de", geom)
	m, err := Window(sim, refs, warmup)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	if m.Stats.Accesses != uint64(len(refs)-warmup) {
		t.Fatalf("window accesses = %d", m.Stats.Accesses)
	}

	// Replay just the prefix on a fresh simulator: window + prefix
	// counters must add up to the full-stream counters.
	pre := MustBuild("de", geom)
	cache.RunRefs(pre, refs[:warmup])
	preExtras := cache.SnapshotExtras(pre)
	fullExtras := cache.SnapshotExtras(sim)
	var defenses uint64
	for i := range fullExtras {
		if m.Extras[i].Name != fullExtras[i].Name {
			t.Fatalf("extras[%d] name %q != %q", i, m.Extras[i].Name, fullExtras[i].Name)
		}
		if m.Extras[i].Value+preExtras[i].Value != fullExtras[i].Value {
			t.Errorf("extras[%s]: window %d + warm %d != full %d",
				m.Extras[i].Name, m.Extras[i].Value, preExtras[i].Value, fullExtras[i].Value)
		}
		if fullExtras[i].Name == "sticky_defenses" {
			defenses = preExtras[i].Value
		}
	}
	// The alternating conflict generates defenses during warmup too, so
	// the subtraction above is exercised on nonzero values.
	if defenses == 0 {
		t.Error("warmup window recorded no sticky defenses; test stream too weak")
	}
}

// TestWindowBatchWarmupEdges pins the batch-path warmup edge cases: no
// warmup, a warmup landing exactly on a chunk boundary, and a warmup
// inside the final chunk must all measure byte-identically to scalar
// driving of the same spec.
func TestWindowBatchWarmupEdges(t *testing.T) {
	geom := cache.DM(1<<10, 16)
	n := cache.BatchChunk + 2500
	refs := make([]trace.Ref, n)
	for i := range refs {
		switch i % 3 {
		case 0:
			refs[i] = trace.Ref{Addr: uint64(i%64) * 16}
		case 1:
			refs[i] = trace.Ref{Addr: 1 << 10}
		default:
			refs[i] = trace.Ref{Addr: uint64(i) * 4 % (1 << 13)}
		}
	}
	for _, spec := range []string{"dm", "de", "lru:ways=4"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			for _, warmup := range []int{0, cache.BatchChunk, n - 100} {
				mBatch, err := Window(MustBuild(spec, geom), refs, warmup)
				if err != nil {
					t.Fatalf("warmup %d (batched): %v", warmup, err)
				}
				mScalar, err := Window(cache.ScalarOnly(MustBuild(spec, geom)), refs, warmup)
				if err != nil {
					t.Fatalf("warmup %d (scalar): %v", warmup, err)
				}
				if mBatch.Stats != mScalar.Stats {
					t.Errorf("warmup %d: batched %+v != scalar %+v", warmup, mBatch.Stats, mScalar.Stats)
				}
				if len(mBatch.Extras) != len(mScalar.Extras) {
					t.Fatalf("warmup %d: extras length %d != %d", warmup, len(mBatch.Extras), len(mScalar.Extras))
				}
				for i := range mScalar.Extras {
					if mBatch.Extras[i] != mScalar.Extras[i] {
						t.Errorf("warmup %d: extras[%d] = %+v, want %+v", warmup, i, mBatch.Extras[i], mScalar.Extras[i])
					}
				}
			}
		})
	}
}

// instrumentedDirect is a WindowDirect simulator that also carries
// counters, for pinning the Extras contract on the direct path.
type instrumentedDirect struct {
	windows uint64
}

func (s *instrumentedDirect) Access(uint64) cache.Result { panic("drive via Window") }
func (s *instrumentedDirect) Stats() cache.Stats         { return cache.Stats{} }
func (s *instrumentedDirect) Extras() []cache.Counter {
	return []cache.Counter{{Name: "windows", Value: s.windows}}
}
func (s *instrumentedDirect) SimulateWindow(refs []trace.Ref, warmup int) (cache.Stats, error) {
	s.windows++
	return cache.Stats{Accesses: uint64(len(refs) - warmup)}, nil
}

// TestWindowDirectExtrasContract pins the Measurement contract on the
// WindowDirect path: Extras is non-nil (and delta-scoped to the call)
// exactly when the simulator is Instrumented — the same rule as the
// incremental path, so callers never branch on how a spec is driven.
func TestWindowDirectExtrasContract(t *testing.T) {
	refs := conflictRefs(100)
	sim := &instrumentedDirect{}
	m, err := Window(sim, refs, 10)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	if len(m.Extras) != 1 || m.Extras[0] != (cache.Counter{Name: "windows", Value: 1}) {
		t.Errorf("first measurement extras = %+v, want windows=1", m.Extras)
	}
	// A second measurement on the same simulator must report only its own
	// delta, not the cumulative counter.
	m2, err := Window(sim, refs, 10)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	if len(m2.Extras) != 1 || m2.Extras[0] != (cache.Counter{Name: "windows", Value: 1}) {
		t.Errorf("second measurement extras = %+v, want delta windows=1", m2.Extras)
	}
}

// TestWindowDirect checks the whole-stream path: opt is measured through
// WindowDirect with the same warmup semantics, and its Access panics
// with a pointer at the right entry point.
func TestWindowDirect(t *testing.T) {
	geom := cache.DM(64, 4)
	refs := conflictRefs(200)
	const warmup = 37

	sim := MustBuild("opt", geom)
	m, err := Window(sim, refs, warmup)
	if err != nil {
		t.Fatalf("Window: %v", err)
	}
	if m.Stats.Accesses != uint64(len(refs)-warmup) {
		t.Errorf("opt window accesses = %d, want %d", m.Stats.Accesses, len(refs)-warmup)
	}
	if m.Extras != nil {
		t.Errorf("direct path returned extras %+v", m.Extras)
	}
	if _, err := Window(sim, refs, len(refs)); err == nil {
		t.Error("opt Window with warmup == len(refs) succeeded, want error")
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("opt Access did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "policy.Window") {
			t.Errorf("opt Access panic %v does not point at policy.Window", r)
		}
	}()
	sim.Access(0)
}

// TestWindowCtxCancel pins the graceful-cancel path the single-run CLI
// relies on: a cancelled context stops the chunked drive loop with the
// context's error, while an uncancelled WindowCtx run is bit-identical
// to Window.
func TestWindowCtxCancel(t *testing.T) {
	geom := cache.DM(64, 4)
	// Two chunks' worth of references so a mid-stream check exists.
	refs := conflictRefs(3 * windowChunk / 2)

	want, err := Window(MustBuild("de", geom), refs, 100)
	if err != nil {
		t.Fatal(err)
	}
	got, err := WindowCtx(context.Background(), MustBuild("de", geom), refs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != want.Stats {
		t.Errorf("WindowCtx stats %+v != Window stats %+v", got.Stats, want.Stats)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := WindowCtx(cancelled, MustBuild("de", geom), refs, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled WindowCtx err = %v, want context.Canceled", err)
	}
}
