package policy

import (
	"strings"
	"testing"
)

// TestParseStringRoundTrip pins the canonical form: aliases expand,
// defaults drop, options settle into a fixed order, and the canonical
// string reparses to the identical Spec.
func TestParseStringRoundTrip(t *testing.T) {
	cases := []struct {
		in, canon string
	}{
		{"dm", "dm"},
		{"de", "de"},
		{"  de  ", "de"},
		{"de:sticky=2", "de:sticky=2"},
		{"de:sticky=1", "de"},
		{"de:store=table", "de"},
		{"de:store=hashed", "de:store=hashed*4"},
		{"de:store=hashed*8", "de:store=hashed*8"},
		{"de:cold=miss", "de:cold=miss"},
		{"de:cold=hit", "de"},
		{"de:lastline", "de:lastline"},
		{"de:nolastline", "de:nolastline"},
		{"de:lastline,store=hashed*4,sticky=2", "de:sticky=2,store=hashed*4,lastline"},
		{"de-hashed", "de:store=hashed*4"},
		{"de-hashed:lastline", "de:store=hashed*4,lastline"},
		{"de-stream", "de-stream"},
		{"de-stream:depth=8", "de-stream:depth=8"},
		{"de-stream:depth=4", "de-stream"},
		{"de-stream:sticky=2,cold=miss", "de-stream:sticky=2,cold=miss"},
		{"opt", "opt"},
		{"opt:lastline", "opt:lastline"},
		{"opt:nolastline", "opt:nolastline"},
		{"lru", "lru"},
		{"lru2", "lru"},
		{"lru4", "lru:ways=4"},
		{"lru:ways=2", "lru"},
		{"lru:ways=8", "lru:ways=8"},
		{"fifo", "fifo"},
		{"fifo2", "fifo"},
		{"fifo:ways=4", "fifo:ways=4"},
		{"victim", "victim"},
		{"victim:entries=8", "victim:entries=8"},
		{"victim:entries=4", "victim"},
		{"stream", "stream"},
		{"stream:depth=4", "stream"},
		{"stream:depth=2", "stream:depth=2"},
	}
	for _, c := range cases {
		sp, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := sp.String(); got != c.canon {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.canon)
		}
		again, err := Parse(sp.String())
		if err != nil {
			t.Errorf("reparse of canonical %q: %v", sp.String(), err)
			continue
		}
		if again != sp {
			t.Errorf("round trip of %q: %+v != %+v", c.in, again, sp)
		}
	}
}

// TestParseErrors pins that malformed specs error rather than parse to
// something surprising.
func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"nope",
		"DE", // family names are case-sensitive
		"de:",
		"de:,",
		"de:bogus=1",
		"de:sticky",
		"de:sticky=",
		"de:sticky=x",
		"de:sticky=0",
		"de:sticky=256",
		"de:sticky=2,sticky=3",
		"de:lastline,nolastline",
		"de:nolastline,lastline",
		"de:lastline=1",
		"de:store",
		"de:store=weird",
		"de:store=hashed*0",
		"de:store=hashed*x",
		"de:cold=maybe",
		"de:ways=2",
		"de:depth=4",
		"dm:ways=2",
		"opt:sticky=2",
		"lru:ways=0",
		"lru:sticky=1",
		"victim:entries=-1",
		"stream:depth=0",
		"de-stream:lastline",
		":x",
		"de::",
	}
	for _, in := range bad {
		if sp, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", in, sp)
		}
	}
}

// TestWithOverrides pins the flag-override helpers: they adjust the
// families that have the option and leave the rest untouched.
func TestWithOverrides(t *testing.T) {
	if got := MustParse("de").WithLastLine(true).String(); got != "de:lastline" {
		t.Errorf("de WithLastLine(true) = %q", got)
	}
	if got := MustParse("de:lastline").WithLastLine(false).String(); got != "de:nolastline" {
		t.Errorf("de:lastline WithLastLine(false) = %q", got)
	}
	if got := MustParse("victim").WithLastLine(true).String(); got != "victim" {
		t.Errorf("victim WithLastLine = %q, want no-op", got)
	}
	if got := MustParse("de").WithSticky(3).String(); got != "de:sticky=3" {
		t.Errorf("de WithSticky(3) = %q", got)
	}
	if got := MustParse("de").WithSticky(0).String(); got != "de" {
		t.Errorf("de WithSticky(0) = %q, want default kept", got)
	}
	if got := MustParse("lru4").WithSticky(3).String(); got != "lru:ways=4" {
		t.Errorf("lru4 WithSticky = %q, want no-op", got)
	}
}

// TestSplitList pins the list splitter used by -policies: option commas
// continue the previous spec, policy heads start a new one.
func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"dm", []string{"dm"}},
		{"dm,de,opt", []string{"dm", "de", "opt"}},
		{"dm, de ,opt", []string{"dm", "de", "opt"}},
		{"de:sticky=2,store=hashed*4,lastline,opt", []string{"de:sticky=2,store=hashed*4,lastline", "opt"}},
		{"dm,de-hashed:lastline,lru:ways=4", []string{"dm", "de-hashed:lastline", "lru:ways=4"}},
		{"victim:entries=8,stream:depth=2", []string{"victim:entries=8", "stream:depth=2"}},
	}
	for _, c := range cases {
		got, err := SplitList(c.in)
		if err != nil {
			t.Errorf("SplitList(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("SplitList(%q) = %q, want %q", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitList(%q)[%d] = %q, want %q", c.in, i, got[i], c.want[i])
			}
		}
	}
	for _, bad := range []string{"", "sticky=2,de", "ways=4"} {
		if got, err := SplitList(bad); err == nil {
			t.Errorf("SplitList(%q) = %q, want error", bad, got)
		}
	}
}

// TestMustParsePanics pins MustParse's panic on a bad spec.
func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on a bad spec did not panic")
		}
	}()
	MustParse("not-a-policy")
}

// FuzzParseSpec asserts parse-format-parse stability: any input that
// parses must render a canonical form that reparses to the identical
// Spec and formats identically again; any input that does not parse
// must produce a clean, prefixed error.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"dm",
		"de:sticky=2,store=hashed*4,lastline",
		"de-hashed",
		"de-hashed:lastline",
		"de:cold=miss",
		"de-stream:depth=2",
		"opt:nolastline",
		"lru:ways=4",
		"fifo2",
		"victim:entries=8",
		"stream:depth=4",
		"bogus",
		"de:",
		"de:store=hashed*",
		"de:lastline,nolastline",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		sp, err := Parse(in)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "policy: ") {
				t.Fatalf("Parse(%q) error %q lacks the policy: prefix", in, err)
			}
			return
		}
		canon := sp.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, in, err)
		}
		if again != sp {
			t.Fatalf("Parse(%q) = %+v but Parse(%q) = %+v", in, sp, canon, again)
		}
		if again.String() != canon {
			t.Fatalf("format of %q is unstable: %q then %q", in, canon, again.String())
		}
	})
}
