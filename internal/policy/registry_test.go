package policy

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/victim"
)

// mixRefs generates a deterministic pseudo-random reference stream (an
// LCG over a 64KB footprint) that exercises hits, conflicts, and
// evictions.
func mixRefs(n int) []trace.Ref {
	refs := make([]trace.Ref, n)
	state := uint64(0x2545F4914F6CDD1D)
	for i := range refs {
		state = state*6364136223846793005 + 1442695040888963407
		refs[i] = trace.Ref{Addr: (state >> 33) % (64 << 10)}
	}
	return refs
}

// TestNamesAllParseAndBuild: every name the registry advertises parses,
// builds at a stock geometry, and (online families) runs with
// self-consistent stats. This is the inventory -list-policies exposes.
func TestNamesAllParseAndBuild(t *testing.T) {
	geom := cache.DM(4096, 16)
	refs := mixRefs(2000)
	for _, name := range Names() {
		sp, err := Parse(name)
		if err != nil {
			t.Errorf("Parse(%q): %v", name, err)
			continue
		}
		sim, err := sp.Build(geom)
		if err != nil {
			t.Errorf("Build(%q): %v", name, err)
			continue
		}
		m, err := Window(sim, refs, 0)
		if err != nil {
			t.Errorf("Window(%q): %v", name, err)
			continue
		}
		s := m.Stats
		if s.Accesses != uint64(len(refs)) || s.Hits+s.Misses != s.Accesses {
			t.Errorf("%q stats inconsistent: %+v", name, s)
		}
	}
}

// TestBuildMatchesHandConstruction pins spec semantics against the
// hand-built simulators the CLIs used before the registry: identical
// stats over a mixed stream. This is what keeps sweep CSVs byte-stable
// across the refactor.
func TestBuildMatchesHandConstruction(t *testing.T) {
	geom := cache.DM(4096, 16)
	refs := mixRefs(5000)
	cases := []struct {
		spec string
		mk   func() cache.Simulator
	}{
		{"dm", func() cache.Simulator { return cache.MustDirectMapped(geom) }},
		// line 16 > 4, so auto last-line is on, matching the sweep grid.
		{"de", func() cache.Simulator {
			return core.Must(core.Config{Geometry: geom, Store: core.NewTableStore(true), UseLastLine: true})
		}},
		{"de-hashed", func() cache.Simulator {
			return core.Must(core.Config{
				Geometry:    geom,
				Store:       core.MustHashedStore(int(geom.Lines())*4, true),
				UseLastLine: true,
			})
		}},
		{"de:cold=miss,nolastline", func() cache.Simulator {
			return core.Must(core.Config{Geometry: geom, Store: core.NewTableStore(false)})
		}},
		{"de:sticky=4", func() cache.Simulator {
			return core.Must(core.Config{Geometry: geom, Store: core.NewTableStore(true), UseLastLine: true, StickyMax: 4})
		}},
		{"de-stream:depth=2", func() cache.Simulator {
			return stream.MustExclusion(core.Config{Geometry: geom, Store: core.NewTableStore(true)}, 2)
		}},
		{"lru2", func() cache.Simulator {
			g := geom
			g.Ways = 2
			return cache.MustSetAssoc(g, cache.LRU, 1)
		}},
		{"lru:ways=4", func() cache.Simulator {
			g := geom
			g.Ways = 4
			return cache.MustSetAssoc(g, cache.LRU, 1)
		}},
		{"fifo2", func() cache.Simulator {
			g := geom
			g.Ways = 2
			return cache.MustSetAssoc(g, cache.FIFO, 1)
		}},
		{"victim:entries=8", func() cache.Simulator { return victim.Must(geom, 8) }},
		{"stream", func() cache.Simulator { return stream.Must(geom, 4) }},
	}
	for _, c := range cases {
		got := MustBuild(c.spec, geom)
		want := c.mk()
		cache.RunRefs(got, refs)
		cache.RunRefs(want, refs)
		if got.Stats() != want.Stats() {
			t.Errorf("%q: stats %+v != hand-built %+v", c.spec, got.Stats(), want.Stats())
		}
	}
}

// TestAutoLastLine pins the tri-state default: 4-byte lines leave the §6
// buffer off, wider lines enable it, and explicit options win either
// way. Observed through the lastline_hits counter on sequential
// references.
func TestAutoLastLine(t *testing.T) {
	seq := make([]trace.Ref, 64)
	for i := range seq {
		seq[i] = trace.Ref{Addr: uint64(i) * 4}
	}
	lastLineHits := func(specStr string, line uint64) uint64 {
		t.Helper()
		sim := MustBuild(specStr, cache.DM(1024, line))
		cache.RunRefs(sim, seq)
		for _, c := range cache.SnapshotExtras(sim) {
			if c.Name == "lastline_hits" {
				return c.Value
			}
		}
		t.Fatalf("%q has no lastline_hits counter", specStr)
		return 0
	}
	if got := lastLineHits("de", 4); got != 0 {
		t.Errorf("de at 4B lines: lastline_hits = %d, want 0 (auto off)", got)
	}
	if got := lastLineHits("de", 16); got == 0 {
		t.Error("de at 16B lines: lastline_hits = 0, want >0 (auto on)")
	}
	if got := lastLineHits("de:nolastline", 16); got != 0 {
		t.Errorf("de:nolastline at 16B lines: lastline_hits = %d, want 0", got)
	}
	if got := lastLineHits("de:lastline", 4); got != 0 {
		// 4-byte lines hold one reference each; the buffer exists but
		// sequential references never revisit the current line.
		t.Errorf("de:lastline at 4B lines: lastline_hits = %d", got)
	}
}

// TestBuildErrors pins that Build surfaces geometry and zero-Spec
// problems as errors rather than panics.
func TestBuildErrors(t *testing.T) {
	bad := cache.Geometry{Size: 100, LineSize: 3}
	for _, name := range []string{"dm", "de", "de-stream", "opt", "lru", "victim", "stream"} {
		if sim, err := MustParse(name).Build(bad); err == nil {
			t.Errorf("Build(%q, bad geometry) = %T, want error", name, sim)
		}
	}
	if sim, err := (Spec{}).Build(cache.DM(1024, 4)); err == nil {
		t.Errorf("zero Spec built %T, want error", sim)
	}
}

// TestFamiliesMetadata pins registry invariants the consumers rely on:
// docs present, opt the only Direct family, aliases resolving to their
// family, and no duplicate names.
func TestFamiliesMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, f := range Families() {
		if f.Name == "" || f.Doc == "" {
			t.Errorf("family %+v missing name or doc", f)
		}
		if f.Direct != (f.Name == "opt") {
			t.Errorf("family %s: Direct = %v", f.Name, f.Direct)
		}
		if !f.EventualHit {
			t.Errorf("family %s: EventualHit = false", f.Name)
		}
		for _, a := range append([]string{f.Name}, f.Aliases...) {
			if seen[a] {
				t.Errorf("name %q registered twice", a)
			}
			seen[a] = true
		}
		for _, a := range f.Aliases {
			sp, err := Parse(a)
			if err != nil {
				t.Errorf("alias %q: %v", a, err)
			} else if sp.Family() != f.Name {
				t.Errorf("alias %q resolved to family %q, want %q", a, sp.Family(), f.Name)
			}
		}
	}
}

// TestCellShape pins the engine adapter: whole-stream families get a
// Direct cell, online families a Policy cell.
func TestCellShape(t *testing.T) {
	if c := MustParse("opt").Cell(); c.Direct == nil || c.Policy != nil {
		t.Errorf("opt cell = %+v, want Direct only", c)
	}
	if c := MustParse("de").Cell(); c.Policy == nil || c.Direct != nil {
		t.Errorf("de cell = %+v, want Policy only", c)
	}
	// The Direct cell must agree with Window over the same stream.
	geom := cache.DM(4096, 16)
	refs := mixRefs(3000)
	got, err := MustParse("opt").Cell().Direct(refs, geom)
	if err != nil {
		t.Fatalf("opt Direct: %v", err)
	}
	m, err := Window(MustBuild("opt", geom), refs, 0)
	if err != nil {
		t.Fatalf("opt Window: %v", err)
	}
	if got != m.Stats {
		t.Errorf("opt Cell.Direct = %+v, Window = %+v", got, m.Stats)
	}
}
