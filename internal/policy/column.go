package policy

import (
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/multisim"
)

// Column returns a constructor for a multisim column kernel that
// drives this spec at every size in sizes (sharing one line size) in a
// single stream pass, or ok=false when the spec is not column-eligible.
// The constructor is deferred — like Cell's PolicyFunc it runs on an
// engine worker, freshly per attempt — and the returned kernel's
// Outcomes follow the order of sizes.
//
// Eligibility (DESIGN.md §15): dm, de (any option set), lru, and fifo
// columns are kernel-backed. opt needs the whole future of the stream
// per geometry, and victim / stream / de-stream carry auxiliary-buffer
// state whose traffic depends on each cell's own miss sequence, so
// those families fall back to cell-by-cell simulation. A column whose
// member geometries do not all validate is also ineligible, so the
// per-cell path surfaces the construction error for the right cell.
func (s Spec) Column(line uint64, sizes []uint64) (func() (engine.Column, error), bool) {
	ways := 1
	switch s.family {
	case "dm", "de":
	case "lru", "fifo":
		ways = s.ways
	default:
		return nil, false
	}
	if multisim.Validate(line, sizes, ways) != nil {
		return nil, false
	}
	// Copy: the constructor outlives this call and callers may reuse
	// their slice.
	sz := append([]uint64(nil), sizes...)
	switch s.family {
	case "dm":
		return func() (engine.Column, error) { return multisim.NewDM(line, sz) }, true
	case "de":
		cfg := multisim.DEConfig{
			StickyMax: s.sticky,
			Hashed:    s.hashed,
			Bits:      s.bits,
			AssumeHit: !s.coldMiss,
			// The register decision depends only on the line size, which
			// the whole column shares.
			LastLine: s.lastLineEnabled(cache.Geometry{Size: sz[0], LineSize: line, Ways: 1}),
		}
		return func() (engine.Column, error) { return multisim.NewDE(cfg, line, sz) }, true
	case "lru":
		return func() (engine.Column, error) { return multisim.NewLRU(line, sz, ways) }, true
	default: // fifo
		return func() (engine.Column, error) { return multisim.NewFIFO(line, sz, ways) }, true
	}
}
