package policy

import (
	"repro/internal/cache"
	"repro/internal/engine"
	"repro/internal/trace"
)

// Cell returns an engine cell body for the spec: Direct for whole-stream
// families, Policy otherwise, so sweep grids need no per-policy
// switching. Label, Geometry, and Stream are left for the caller to
// fill in; the engine hands the cell's Geometry to the returned
// closure.
func (s Spec) Cell() engine.Cell {
	fam, _ := familyByName(s.family)
	if fam.Direct {
		return engine.Cell{
			Direct: func(refs []trace.Ref, geom cache.Geometry) (cache.Stats, error) {
				sim, err := s.Build(geom)
				if err != nil {
					return cache.Stats{}, err
				}
				return sim.(WindowDirect).SimulateWindow(refs, 0)
			},
		}
	}
	return engine.Cell{
		Policy: func(geom cache.Geometry) (cache.Simulator, error) {
			return s.Build(geom)
		},
	}
}
