package policy

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/victim"
)

// Family describes one registered policy family: its name, what it
// simulates, and the metadata consumers need to drive it (whether it
// needs the whole stream up front, and which conformance battery
// applies).
type Family struct {
	// Name is the canonical family name ("dm", "de", ...).
	Name string
	// Doc is a one-line description with the accepted options, shown by
	// dynex-sweep -list-policies and the CLIs' -policy usage text.
	Doc string
	// Aliases are legacy spec names that expand to this family with
	// preset options (e.g. "de-hashed" → "de:store=hashed*4").
	Aliases []string
	// Direct marks whole-stream policies (Belady-optimal): the built
	// simulator implements WindowDirect and panics on Access, so it must
	// be driven through policy.Window or engine.Cell.Direct.
	Direct bool
	// EventualHit reports whether re-referencing one address enough
	// times must eventually hit — true for every online policy here;
	// the conformance suite asserts it.
	EventualHit bool

	// options is the set of option keys Parse accepts for the family
	// ("nolastline" is folded into "lastline").
	options map[string]bool
}

// optionList renders the allowed option keys for error messages, in the
// spec's canonical order.
func (f Family) optionList() string {
	if len(f.options) == 0 {
		return "none"
	}
	var out string
	for _, key := range [...]string{"sticky", "store", "cold", "lastline", "ways", "entries", "depth"} {
		if f.options[key] {
			if out != "" {
				out += ", "
			}
			out += key
			if key == "lastline" {
				out += ", nolastline"
			}
		}
	}
	return out
}

// families is the registry, in presentation order: the paper's baseline
// and contribution first, then the comparison policies.
var families = []Family{
	{
		Name:        "dm",
		Doc:         "conventional direct-mapped cache (no options)",
		EventualHit: true,
	},
	{
		Name:        "de",
		Doc:         "dynamic exclusion (sticky=N, store=table|hashed*BITS, cold=hit|miss, lastline|nolastline)",
		Aliases:     []string{"de-hashed"},
		EventualHit: true,
		options:     map[string]bool{"sticky": true, "store": true, "cold": true, "lastline": true},
	},
	{
		Name:        "de-stream",
		Doc:         "dynamic exclusion with excluded lines served by a stream buffer (§6; sticky, store, cold, depth=N)",
		EventualHit: true,
		options:     map[string]bool{"sticky": true, "store": true, "cold": true, "depth": true},
	},
	{
		Name:        "opt",
		Doc:         "Belady-optimal direct-mapped with bypass, needs the whole stream (lastline|nolastline)",
		Direct:      true,
		EventualHit: true,
		options:     map[string]bool{"lastline": true},
	},
	{
		Name:        "lru",
		Doc:         "set-associative LRU (ways=N)",
		Aliases:     []string{"lru2", "lru4"},
		EventualHit: true,
		options:     map[string]bool{"ways": true},
	},
	{
		Name:        "fifo",
		Doc:         "set-associative FIFO (ways=N)",
		Aliases:     []string{"fifo2"},
		EventualHit: true,
		options:     map[string]bool{"ways": true},
	},
	{
		Name:        "victim",
		Doc:         "direct-mapped cache with a victim buffer (entries=N)",
		EventualHit: true,
		options:     map[string]bool{"entries": true},
	},
	{
		Name:        "stream",
		Doc:         "direct-mapped cache with a sequential stream buffer (depth=N)",
		EventualHit: true,
		options:     map[string]bool{"depth": true},
	},
}

// Families returns the registered policy families in presentation
// order. The slice is freshly allocated; callers may reorder it.
func Families() []Family {
	out := make([]Family, len(families))
	copy(out, families)
	return out
}

// familyByName looks a family up by its canonical name (not an alias).
func familyByName(name string) (Family, bool) {
	for _, f := range families {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// Names returns every accepted spec head: each family followed by its
// aliases, in registry order. This is the -list-policies inventory.
func Names() []string {
	var out []string
	for _, f := range families {
		out = append(out, f.Name)
		out = append(out, f.Aliases...)
	}
	return out
}

// lastLineEnabled resolves the tri-state last-line option against a
// geometry: auto enables the §6 buffer whenever lines hold more than one
// 4-byte instruction.
func (s Spec) lastLineEnabled(geom cache.Geometry) bool {
	switch s.lastLine {
	case lastLineOn:
		return true
	case lastLineOff:
		return false
	default:
		return geom.LineSize > 4
	}
}

// hitLastStore builds the spec's hit-last store for a validated
// direct-mapped geometry.
func (s Spec) hitLastStore(geom cache.Geometry) (core.HitLastStore, error) {
	if s.hashed {
		return core.NewHashedStore(int(geom.Lines())*s.bits, !s.coldMiss)
	}
	return core.NewTableStore(!s.coldMiss), nil
}

// Build constructs the spec's simulator for the given geometry. The
// geometry's Ways field is ignored by the direct-mapped families (dm,
// de, de-stream, opt, victim, stream) and overridden by ways= for
// lru/fifo. Direct families return a simulator that only supports the
// WindowDirect path (Access panics).
func (s Spec) Build(geom cache.Geometry) (cache.Simulator, error) {
	switch s.family {
	case "dm":
		g := geom
		g.Ways = 1
		return cache.NewDirectMapped(g)
	case "de":
		g := geom
		g.Ways = 1
		if err := g.Validate(); err != nil {
			return nil, err
		}
		store, err := s.hitLastStore(g)
		if err != nil {
			return nil, err
		}
		return core.New(core.Config{
			Geometry:    g,
			Store:       store,
			UseLastLine: s.lastLineEnabled(g),
			StickyMax:   s.sticky,
		})
	case "de-stream":
		g := geom
		g.Ways = 1
		if err := g.Validate(); err != nil {
			return nil, err
		}
		store, err := s.hitLastStore(g)
		if err != nil {
			return nil, err
		}
		// NewExclusion owns the last-line decision (it forces the buffer
		// off; the stream buffer subsumes it).
		return stream.NewExclusion(core.Config{
			Geometry:  g,
			Store:     store,
			StickyMax: s.sticky,
		}, s.depth)
	case "opt":
		g := geom
		g.Ways = 1
		if err := g.Validate(); err != nil {
			return nil, err
		}
		return &optSim{geom: g, lastLine: s.lastLineEnabled(g)}, nil
	case "lru", "fifo":
		g := geom
		g.Ways = s.ways
		pol := cache.LRU
		if s.family == "fifo" {
			pol = cache.FIFO
		}
		return cache.NewSetAssoc(g, pol, 1)
	case "victim":
		return victim.New(geom, s.entries)
	case "stream":
		return stream.New(geom, s.depth)
	}
	return nil, fmt.Errorf("policy: cannot build zero or unregistered Spec %q (use Parse)", s.family)
}

// MustBuild parses specStr and builds it for geom, panicking on either
// error; for tables of experiment configurations.
func MustBuild(specStr string, geom cache.Geometry) cache.Simulator {
	sim, err := MustParse(specStr).Build(geom)
	if err != nil {
		panic(err)
	}
	return sim
}
