// Package policy is the single declarative path from a policy
// specification string to a runnable cache simulator. Every consumer —
// cmd/dynex's -policy flag, cmd/dynex-sweep's -policies grid,
// internal/experiments' figure and ablation tables, and the conformance
// suite — builds simulators through this package, so registering a
// family here makes it available everywhere at once.
//
// A spec is a family name plus comma-separated options:
//
//	dm
//	de:sticky=2,store=hashed*4,lastline
//	de-stream:depth=4
//	opt
//	lru:ways=4
//	fifo:ways=2
//	victim:entries=8
//	stream:depth=4
//
// Parse and Spec.String round-trip: String renders the canonical form
// (alias-free, defaults omitted, options in a fixed order), and parsing
// the canonical form yields the same Spec. Legacy policy names from
// before the spec grammar (de-hashed, lru2, lru4, fifo2) are accepted as
// aliases and may carry further options ("de-hashed:lastline").
//
// The de and opt families' last-line buffer is tri-state: "lastline"
// forces it on, "nolastline" off, and the default ("auto") enables it
// whenever the geometry's line size exceeds one 4-byte instruction —
// matching what the sweep grid has always done.
package policy

import (
	"fmt"
	"strconv"
	"strings"
)

// lastLineMode is the tri-state §6 last-line buffer option.
type lastLineMode uint8

const (
	// lastLineAuto enables the buffer iff the geometry's LineSize > 4.
	lastLineAuto lastLineMode = iota
	lastLineOn
	lastLineOff
)

// Spec is one parsed policy specification. The zero value is invalid;
// obtain Specs through Parse.
type Spec struct {
	family string

	sticky   int          // de, de-stream: sticky levels
	hashed   bool         // de, de-stream: hashed (vs ideal table) hit-last store
	bits     int          // de, de-stream: hashed hit-last bits per cache line
	coldMiss bool         // de, de-stream: assume-miss cold start
	lastLine lastLineMode // de, opt: §6 last-line buffer
	ways     int          // lru, fifo: associativity
	entries  int          // victim: buffer entries
	depth    int          // stream, de-stream: prefetch buffer depth
}

// Family returns the spec's family name ("dm", "de", ...), never an
// alias.
func (s Spec) Family() string { return s.family }

// alias is a legacy policy name expanding to a family with preset
// options.
type alias struct {
	family string
	opts   string
}

// aliases maps the pre-spec policy names onto their canonical families.
var aliases = map[string]alias{
	"de-hashed": {"de", "store=hashed*4"},
	"lru2":      {"lru", "ways=2"},
	"lru4":      {"lru", "ways=4"},
	"fifo2":     {"fifo", "ways=2"},
}

// defaultSpec returns the family's spec with every option at its
// default.
func defaultSpec(family string) Spec {
	sp := Spec{family: family}
	switch family {
	case "de":
		sp.sticky = 1
	case "de-stream":
		sp.sticky = 1
		sp.depth = 4
	case "lru", "fifo":
		sp.ways = 2
	case "victim":
		sp.entries = 4
	case "stream":
		sp.depth = 4
	}
	return sp
}

// Parse decodes a policy spec string.
func Parse(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, fmt.Errorf("policy: empty spec")
	}
	head, opts, hasOpts := strings.Cut(s, ":")
	if a, ok := aliases[head]; ok {
		head = a.family
		if hasOpts {
			opts = a.opts + "," + opts
		} else {
			opts, hasOpts = a.opts, true
		}
	}
	fam, ok := familyByName(head)
	if !ok {
		return Spec{}, fmt.Errorf("policy: unknown policy %q (known: %s)", head, strings.Join(Names(), ", "))
	}
	sp := defaultSpec(fam.Name)
	if !hasOpts {
		return sp, nil
	}
	if opts == "" {
		return Spec{}, fmt.Errorf("policy: %s: empty option list after %q", fam.Name, ":")
	}
	seen := map[string]bool{}
	for _, o := range strings.Split(opts, ",") {
		key, val, hasVal := strings.Cut(o, "=")
		if key == "" {
			return Spec{}, fmt.Errorf("policy: %s: empty option in %q", fam.Name, opts)
		}
		// The lastline pair shares one underlying option.
		canon := key
		if key == "nolastline" {
			canon = "lastline"
		}
		if !fam.options[canon] {
			return Spec{}, fmt.Errorf("policy: %s does not take option %q (allowed: %s)", fam.Name, key, fam.optionList())
		}
		if seen[canon] {
			return Spec{}, fmt.Errorf("policy: %s: duplicate option %q", fam.Name, canon)
		}
		seen[canon] = true
		if err := sp.apply(key, val, hasVal); err != nil {
			return Spec{}, err
		}
	}
	return sp, nil
}

// MustParse is Parse but panics on error; for tables of experiment
// configurations written as literals.
func MustParse(s string) Spec {
	sp, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return sp
}

// apply sets one validated option on the spec.
func (s *Spec) apply(key, val string, hasVal bool) error {
	switch key {
	case "sticky":
		n, err := intOpt(key, val, hasVal, 1, 255)
		if err != nil {
			return err
		}
		s.sticky = n
	case "store":
		if !hasVal {
			return fmt.Errorf("policy: option store needs a value (table, hashed, or hashed*BITS)")
		}
		switch {
		case val == "table":
			s.hashed, s.bits = false, 0
		case val == "hashed":
			s.hashed, s.bits = true, 4
		case strings.HasPrefix(val, "hashed*"):
			n, err := intOpt("store=hashed*BITS", strings.TrimPrefix(val, "hashed*"), true, 1, 1024)
			if err != nil {
				return err
			}
			s.hashed, s.bits = true, n
		default:
			return fmt.Errorf("policy: bad store %q: want table, hashed, or hashed*BITS", val)
		}
	case "cold":
		switch val {
		case "hit":
			s.coldMiss = false
		case "miss":
			s.coldMiss = true
		default:
			return fmt.Errorf("policy: bad cold %q: want hit or miss", val)
		}
	case "lastline", "nolastline":
		if hasVal {
			return fmt.Errorf("policy: option %s takes no value", key)
		}
		if key == "lastline" {
			s.lastLine = lastLineOn
		} else {
			s.lastLine = lastLineOff
		}
	case "ways":
		n, err := intOpt(key, val, hasVal, 1, 1024)
		if err != nil {
			return err
		}
		s.ways = n
	case "entries":
		n, err := intOpt(key, val, hasVal, 1, 1<<16)
		if err != nil {
			return err
		}
		s.entries = n
	case "depth":
		n, err := intOpt(key, val, hasVal, 1, 1<<16)
		if err != nil {
			return err
		}
		s.depth = n
	default:
		// Unreachable: the family option table gates keys before apply.
		return fmt.Errorf("policy: unhandled option %q", key)
	}
	return nil
}

// intOpt parses a bounded integer option value.
func intOpt(key, val string, hasVal bool, lo, hi int) (int, error) {
	if !hasVal {
		return 0, fmt.Errorf("policy: option %s needs an integer value", key)
	}
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("policy: option %s: bad integer %q", key, val)
	}
	if n < lo || n > hi {
		return 0, fmt.Errorf("policy: option %s value %d out of [%d,%d]", key, n, lo, hi)
	}
	return n, nil
}

// String renders the canonical spec form: the family name with
// non-default options in a fixed order. Parse(s.String()) returns s for
// every Spec obtained from Parse.
func (s Spec) String() string {
	var opts []string
	addLastLine := func() {
		switch s.lastLine {
		case lastLineOn:
			opts = append(opts, "lastline")
		case lastLineOff:
			opts = append(opts, "nolastline")
		default: // lastLineAuto renders as nothing: it is the default
		}
	}
	switch s.family {
	case "de", "de-stream":
		if s.sticky != 1 {
			opts = append(opts, fmt.Sprintf("sticky=%d", s.sticky))
		}
		if s.hashed {
			opts = append(opts, fmt.Sprintf("store=hashed*%d", s.bits))
		}
		if s.coldMiss {
			opts = append(opts, "cold=miss")
		}
		if s.family == "de" {
			addLastLine()
		} else if s.depth != 4 {
			opts = append(opts, fmt.Sprintf("depth=%d", s.depth))
		}
	case "opt":
		addLastLine()
	case "lru", "fifo":
		if s.ways != 2 {
			opts = append(opts, fmt.Sprintf("ways=%d", s.ways))
		}
	case "victim":
		if s.entries != 4 {
			opts = append(opts, fmt.Sprintf("entries=%d", s.entries))
		}
	case "stream":
		if s.depth != 4 {
			opts = append(opts, fmt.Sprintf("depth=%d", s.depth))
		}
	}
	if len(opts) == 0 {
		return s.family
	}
	return s.family + ":" + strings.Join(opts, ",")
}

// SplitList splits a comma-separated list of policy specs, letting
// option commas continue the previous spec: a fragment whose head (the
// text before any ':') is not a registered policy name or alias belongs
// to the spec before it, so "dm,de:sticky=2,store=hashed*4,opt" splits
// into dm, de:sticky=2,store=hashed*4, and opt. Family names and option
// fragments are disjoint, so the split is unambiguous. The returned
// strings are the raw per-spec texts (suitable as labels); they are not
// parsed or validated here.
func SplitList(s string) ([]string, error) {
	var out []string
	for _, frag := range strings.Split(s, ",") {
		frag = strings.TrimSpace(frag)
		head, _, _ := strings.Cut(frag, ":")
		_, isAlias := aliases[head]
		if _, isFamily := familyByName(head); isFamily || isAlias {
			out = append(out, frag)
			continue
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("policy: list %q does not start with a policy name", s)
		}
		out[len(out)-1] += "," + frag
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("policy: empty policy list")
	}
	return out, nil
}

// WithLastLine returns a copy with the §6 last-line buffer forced on or
// off. It is a no-op for families without the option, so legacy CLI
// flags can pass through unconditionally.
func (s Spec) WithLastLine(on bool) Spec {
	if s.family != "de" && s.family != "opt" {
		return s
	}
	if on {
		s.lastLine = lastLineOn
	} else {
		s.lastLine = lastLineOff
	}
	return s
}

// WithSticky returns a copy with the sticky depth replaced. A no-op for
// families without sticky levels; levels <= 0 keep the default. Range
// validation happens at Build (core.New).
func (s Spec) WithSticky(levels int) Spec {
	if levels <= 0 || (s.family != "de" && s.family != "de-stream") {
		return s
	}
	s.sticky = levels
	return s
}
