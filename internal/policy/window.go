package policy

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/opt"
	"repro/internal/trace"
)

// WindowDirect is implemented by simulators that cannot be driven one
// access at a time because the policy consumes the whole stream's future
// (Belady-optimal). Window detects it and delegates the entire
// measurement, warmup included.
type WindowDirect interface {
	SimulateWindow(refs []trace.Ref, warmup int) (cache.Stats, error)
}

// Measurement is the outcome of one windowed run: the warmup-subtracted
// stats, plus the policy-specific counters over the same window. Extras
// is non-nil exactly when the simulator is cache.Instrumented — on the
// incremental and the WindowDirect path alike (a WindowDirect simulator
// is responsible for window-scoping its own counters; the runner
// subtracts whatever the counters held before the call, so repeated
// measurements on one simulator stay delta-correct).
type Measurement struct {
	Stats  cache.Stats
	Extras []cache.Counter
}

// Window drives sim over refs and measures the post-warmup window: the
// first warmup references prime the simulator, and the returned stats
// and counters cover only the remainder. warmup == 0 measures the whole
// stream; a warmup that is negative or leaves nothing to measure is an
// error. This is the one warmup-snapshot implementation shared by every
// CLI and experiment. Simulators with a cache.BatchSimulator fast path
// are driven in batches through cache.RunRefs — the warmup snapshot
// lands between batches, and the measured stats are bit-identical to
// scalar driving (the conformance differential battery enforces this).
func Window(sim cache.Simulator, refs []trace.Ref, warmup int) (Measurement, error) {
	if warmup < 0 {
		return Measurement{}, fmt.Errorf("policy: negative warmup %d", warmup)
	}
	if warmup > 0 && warmup >= len(refs) {
		return Measurement{}, fmt.Errorf("policy: warmup %d consumes the whole %d-reference stream; nothing left to measure", warmup, len(refs))
	}
	if direct, ok := sim.(WindowDirect); ok {
		warmExtras := cache.SnapshotExtras(sim)
		stats, err := direct.SimulateWindow(refs, warmup)
		if err != nil {
			return Measurement{}, err
		}
		m := Measurement{Stats: stats}
		if extras := cache.SnapshotExtras(sim); extras != nil {
			m.Extras = cache.SubCounters(extras, warmExtras)
		}
		return m, nil
	}
	cache.RunRefs(sim, refs[:warmup])
	warmStats := sim.Stats()
	warmExtras := cache.SnapshotExtras(sim)
	cache.RunRefs(sim, refs[warmup:])
	m := Measurement{Stats: sim.Stats().Sub(warmStats)}
	if extras := cache.SnapshotExtras(sim); extras != nil {
		m.Extras = cache.SubCounters(extras, warmExtras)
	}
	return m, nil
}

// optSim adapts the whole-stream optimal simulator to the registry's
// Build interface. It is driven exclusively through the WindowDirect
// path; Access panics because the policy is undefined without the
// stream's future.
type optSim struct {
	geom     cache.Geometry
	lastLine bool
}

func (o *optSim) Access(uint64) cache.Result {
	panic("policy: the optimal policy needs the whole stream's future; drive it with policy.Window, not Access")
}

func (o *optSim) Stats() cache.Stats { return cache.Stats{} }

// SimulateWindow implements WindowDirect via opt.SimulateDMWindow. The
// geometry was validated at Build, so the call cannot panic.
func (o *optSim) SimulateWindow(refs []trace.Ref, warmup int) (cache.Stats, error) {
	if warmup < 0 || (warmup > 0 && warmup >= len(refs)) {
		return cache.Stats{}, fmt.Errorf("policy: bad warmup %d for %d references", warmup, len(refs))
	}
	return opt.SimulateDMWindow(refs, o.geom, o.lastLine, warmup), nil
}
