package policy

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/opt"
	"repro/internal/trace"
)

// WindowDirect is implemented by simulators that cannot be driven one
// access at a time because the policy consumes the whole stream's future
// (Belady-optimal). Window detects it and delegates the entire
// measurement, warmup included.
type WindowDirect interface {
	SimulateWindow(refs []trace.Ref, warmup int) (cache.Stats, error)
}

// Measurement is the outcome of one windowed run: the warmup-subtracted
// stats, plus the policy-specific counters over the same window. Extras
// is non-nil exactly when the simulator is cache.Instrumented — on the
// incremental and the WindowDirect path alike (a WindowDirect simulator
// is responsible for window-scoping its own counters; the runner
// subtracts whatever the counters held before the call, so repeated
// measurements on one simulator stay delta-correct).
type Measurement struct {
	Stats  cache.Stats
	Extras []cache.Counter
}

// Window drives sim over refs and measures the post-warmup window: the
// first warmup references prime the simulator, and the returned stats
// and counters cover only the remainder. warmup == 0 measures the whole
// stream; a warmup that is negative or leaves nothing to measure is an
// error. This is the one warmup-snapshot implementation shared by every
// CLI and experiment. Simulators with a cache.BatchSimulator fast path
// are driven in batches through cache.RunRefs — the warmup snapshot
// lands between batches, and the measured stats are bit-identical to
// scalar driving (the conformance differential battery enforces this).
func Window(sim cache.Simulator, refs []trace.Ref, warmup int) (Measurement, error) {
	return WindowCtx(context.Background(), sim, refs, warmup)
}

// windowChunk is the number of references driven between cooperative
// cancellation checks of WindowCtx — the same order of magnitude as the
// engine's drive chunk, so an interrupt is honored promptly while the
// check cost vanishes against the simulation.
const windowChunk = 1 << 15

// WindowCtx is Window with cooperative cancellation: the stream is
// driven in windowChunk batches and ctx is checked between them, so a
// long single-cell run (cmd/dynex) stops promptly on SIGINT/SIGTERM
// instead of finishing the whole stream. The warmup snapshot still lands
// exactly on the warmup boundary, and an uncancelled WindowCtx run is
// bit-identical to Window. WindowDirect simulators run the whole
// measurement in one call and are only interruptible before it starts —
// the same caveat the engine's Direct cells carry.
func WindowCtx(ctx context.Context, sim cache.Simulator, refs []trace.Ref, warmup int) (Measurement, error) {
	if warmup < 0 {
		return Measurement{}, fmt.Errorf("policy: negative warmup %d", warmup)
	}
	if warmup > 0 && warmup >= len(refs) {
		return Measurement{}, fmt.Errorf("policy: warmup %d consumes the whole %d-reference stream; nothing left to measure", warmup, len(refs))
	}
	if err := ctx.Err(); err != nil {
		return Measurement{}, err
	}
	if direct, ok := sim.(WindowDirect); ok {
		warmExtras := cache.SnapshotExtras(sim)
		stats, err := direct.SimulateWindow(refs, warmup)
		if err != nil {
			return Measurement{}, err
		}
		m := Measurement{Stats: stats}
		if extras := cache.SnapshotExtras(sim); extras != nil {
			m.Extras = cache.SubCounters(extras, warmExtras)
		}
		return m, nil
	}
	if err := runChunked(ctx, sim, refs[:warmup]); err != nil {
		return Measurement{}, err
	}
	warmStats := sim.Stats()
	warmExtras := cache.SnapshotExtras(sim)
	if err := runChunked(ctx, sim, refs[warmup:]); err != nil {
		return Measurement{}, err
	}
	m := Measurement{Stats: sim.Stats().Sub(warmStats)}
	if extras := cache.SnapshotExtras(sim); extras != nil {
		m.Extras = cache.SubCounters(extras, warmExtras)
	}
	return m, nil
}

// runChunked drives sim over refs in windowChunk batches, checking ctx
// between batches. cache.RunRefs applies the BatchAccess fast path
// within each batch, so chunking changes nothing about the stats.
//
//dynexcheck:hot
func runChunked(ctx context.Context, sim cache.Simulator, refs []trace.Ref) error {
	for len(refs) > 0 {
		n := windowChunk
		if n > len(refs) {
			n = len(refs)
		}
		cache.RunRefs(sim, refs[:n])
		refs = refs[n:]
		if len(refs) > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// optSim adapts the whole-stream optimal simulator to the registry's
// Build interface. It is driven exclusively through the WindowDirect
// path; Access panics because the policy is undefined without the
// stream's future.
type optSim struct {
	geom     cache.Geometry
	lastLine bool
}

func (o *optSim) Access(uint64) cache.Result {
	panic("policy: the optimal policy needs the whole stream's future; drive it with policy.Window, not Access")
}

func (o *optSim) Stats() cache.Stats { return cache.Stats{} }

// SimulateWindow implements WindowDirect via opt.SimulateDMWindow. The
// geometry was validated at Build, so the call cannot panic.
func (o *optSim) SimulateWindow(refs []trace.Ref, warmup int) (cache.Stats, error) {
	if warmup < 0 || (warmup > 0 && warmup >= len(refs)) {
		return cache.Stats{}, fmt.Errorf("policy: bad warmup %d for %d references", warmup, len(refs))
	}
	return opt.SimulateDMWindow(refs, o.geom, o.lastLine, warmup), nil
}
