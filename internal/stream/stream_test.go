package stream

import (
	"testing"

	"repro/internal/cache"
)

func TestStreamBufferSequentialRun(t *testing.T) {
	// Sequential code: the first line misses, the prefetcher covers the
	// rest of the run.
	c := Must(cache.DM(1<<10, 16), 4)
	for a := uint64(0); a < 256; a += 4 {
		c.Access(a)
	}
	s := c.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1 for a sequential run", s.Misses)
	}
	if got := c.Extras()[0]; got.Name != "stream_hits" || got.Value == 0 {
		t.Errorf("extras = %+v, want nonzero stream_hits", got)
	}
}

func TestStreamBufferRestartOnJump(t *testing.T) {
	c := Must(cache.DM(1<<10, 16), 4)
	c.Access(0)      // miss, stream at line 1
	c.Access(0x8000) // jump: miss, stream restarts
	c.Access(0x8010) // next line: stream hit
	s := c.Stats()
	if s.Misses != 2 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 2 misses 1 hit", s)
	}
}

func TestStreamBufferDoesNotFixConflicts(t *testing.T) {
	// The paper: "stream buffers do not change the number of conflict
	// misses". Ping-pong between two conflicting lines defeats the
	// sequential prefetcher entirely.
	const size = 1 << 10
	c := Must(cache.DM(size, 16), 4)
	plain := cache.MustDirectMapped(cache.DM(size, 16))
	for i := 0; i < 20; i++ {
		addr := uint64(i%2) * size
		c.Access(addr)
		plain.Access(addr)
	}
	if c.Stats().Misses != plain.Stats().Misses {
		t.Errorf("stream misses %d, plain %d; should be identical on conflicts",
			c.Stats().Misses, plain.Stats().Misses)
	}
}

func TestBufferHeadOnlyMatch(t *testing.T) {
	b, err := NewBuffer(4)
	if err != nil {
		t.Fatal(err)
	}
	b.Restart(10) // head = 11
	if b.HeadHit(13) {
		t.Error("non-head entry must not match")
	}
	if !b.HeadHit(11) || !b.HeadHit(12) || !b.HeadHit(13) {
		t.Error("sequential head consumption failed")
	}
}

func TestStreamErrors(t *testing.T) {
	if _, err := NewBuffer(0); err == nil {
		t.Error("zero depth accepted")
	}
	if _, err := New(cache.Geometry{Size: 3, LineSize: 4}, 4); err == nil {
		t.Error("bad geometry accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("Must did not panic")
		}
	}()
	Must(cache.DM(64, 4), 0)
}

func TestCacheHitBeatsBuffer(t *testing.T) {
	c := Must(cache.DM(1<<10, 16), 4)
	c.Access(0)
	if got := c.Access(4); got != cache.Hit {
		t.Errorf("resident access = %v", got)
	}
	if c.Extras()[0].Value != 0 {
		t.Error("resident hit must not count as stream hit")
	}
}
