package stream_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/stream"
)

func TestConformance(t *testing.T) {
	geom := cache.DM(16<<10, 16)
	for _, depth := range []int{1, 4, 8} {
		depth := depth
		conformance.Check(t, "stream", conformance.Options{EventualHit: true},
			func() cache.Simulator { return stream.Must(geom, depth) })
	}
}

func TestExclusionConformance(t *testing.T) {
	geom := cache.DM(16<<10, 16)
	conformance.Check(t, "stream-exclusion", conformance.Options{EventualHit: true},
		func() cache.Simulator {
			return stream.MustExclusion(core.Config{
				Geometry: geom,
				Store:    core.NewTableStore(true),
			}, 4)
		})
}
