package stream

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
)

func deCfg(size, line uint64) core.Config {
	return core.Config{Geometry: cache.DM(size, line), Store: core.NewTableStore(false)}
}

func TestExclusionSequentialRunCovered(t *testing.T) {
	// Straight-line code: one real miss, then the line register and the
	// prefetcher cover everything.
	e := MustExclusion(deCfg(1<<10, 16), 4)
	for a := uint64(0); a < 256; a += 4 {
		e.Access(a)
	}
	s := e.Stats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1 for sequential code", s.Misses)
	}
	ex := e.Extras()
	if ex[0].Name != "line_hits" || ex[1].Name != "stream_hits" {
		t.Fatalf("extras = %+v, want line_hits then stream_hits", ex)
	}
	if ex[0].Value == 0 || ex[1].Value == 0 {
		t.Errorf("helper hits = %+v, want both nonzero", ex)
	}
}

func TestExclusionExcludedLineServedByRegister(t *testing.T) {
	const size = 1 << 10
	e := MustExclusion(deCfg(size, 16), 4)
	e.Access(0)
	e.Access(4) // line 0 resident and sticky
	// Conflicting line: excluded, but its sequential words are register
	// hits.
	for _, a := range []uint64{size, size + 4, size + 8, size + 12} {
		e.Access(a)
	}
	s := e.Stats()
	if s.Bypasses != 1 {
		t.Errorf("bypasses = %d, want 1", s.Bypasses)
	}
	if s.Misses != 2 { // line 0 cold + conflicting line
		t.Errorf("misses = %d, want 2: %+v", s.Misses, s)
	}
	if !e.Inner().Contains(0) {
		t.Error("sticky resident displaced")
	}
}

func TestExclusionFSMStillDecides(t *testing.T) {
	// The conflict FSM behaves exactly as core does at line granularity.
	const size = 1 << 10
	e := MustExclusion(deCfg(size, 16), 4)
	e.Access(0)
	e.Access(size) // exclude, sticky drops to 0
	e.Access(0)    // hit: sticky restored
	if !e.Inner().Contains(0) || e.Inner().Sticky(0) != 1 {
		t.Fatal("hit did not restore sticky")
	}
	e.Access(size)   // exclude again, sticky 0
	e.Access(2 * 16) // unrelated line breaks the register run
	e.Access(size)   // non-sticky resident: conflicting line replaces it
	if e.Inner().Contains(0) {
		t.Error("non-sticky resident should be replaced on the next conflict")
	}
	if !e.Inner().Contains(size) {
		t.Error("conflicting line should now be resident")
	}
}

func TestExclusionBeatsLastLineOnSequentialCode(t *testing.T) {
	// Against the last-line register alone, the prefetch buffer removes
	// sequential compulsory misses (§6: stream buffers are complementary).
	var seq []uint64
	for a := uint64(0); a < 8<<10; a += 4 {
		seq = append(seq, a)
	}
	e := MustExclusion(deCfg(1<<10, 16), 4)
	ll := core.Must(core.Config{
		Geometry:    cache.DM(1<<10, 16),
		Store:       core.NewTableStore(false),
		UseLastLine: true,
	})
	for _, a := range seq {
		e.Access(a)
		ll.Access(a)
	}
	if e.Stats().Misses >= ll.Stats().Misses {
		t.Errorf("stream exclusion %d misses, last-line %d; prefetch should win",
			e.Stats().Misses, ll.Stats().Misses)
	}
}

func TestExclusionErrors(t *testing.T) {
	if _, err := NewExclusion(core.Config{}, 4); err == nil {
		t.Error("bad DE config accepted")
	}
	if _, err := NewExclusion(deCfg(1<<10, 16), 0); err == nil {
		t.Error("zero depth accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustExclusion did not panic")
		}
	}()
	MustExclusion(core.Config{}, 1)
}

func TestExclusionStatsConsistent(t *testing.T) {
	e := MustExclusion(deCfg(1<<10, 16), 4)
	for i := 0; i < 1000; i++ {
		e.Access(uint64(i*7%4096) * 4)
	}
	s := e.Stats()
	if s.Hits+s.Misses != s.Accesses || s.Accesses != 1000 {
		t.Errorf("stats inconsistent: %+v", s)
	}
}
