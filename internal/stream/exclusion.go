package stream

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
)

// Exclusion is the paper's third §6 implementation of dynamic exclusion
// with multi-instruction lines: "leave excluded instructions in the
// stream buffer". A current-line register serves sequential fetches
// within the line (so the FSM sees one event per line run, and excluded
// lines keep their spatial locality), and a sequential prefetch buffer
// covers the next lines, hiding the compulsory misses of straight-line
// code the way Jouppi's design does. The FSM still decides, line by
// line, what is stored in the cache proper.
type Exclusion struct {
	de  *core.Cache
	buf *Buffer

	cur      uint64
	curValid bool

	stats cache.Stats

	lineHits   uint64 // fetches served by the current-line register
	streamHits uint64 // line fetches covered by the prefetch buffer
}

// NewExclusion returns a dynamic exclusion cache whose excluded lines are
// served by a stream buffer of the given depth. cfg.UseLastLine is
// ignored (the current-line register replaces it).
func NewExclusion(cfg core.Config, depth int) (*Exclusion, error) {
	cfg.UseLastLine = false
	de, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	buf, err := NewBuffer(depth)
	if err != nil {
		return nil, err
	}
	return &Exclusion{de: de, buf: buf}, nil
}

// MustExclusion is NewExclusion but panics on error.
func MustExclusion(cfg core.Config, depth int) *Exclusion {
	e, err := NewExclusion(cfg, depth)
	if err != nil {
		panic(fmt.Sprintf("stream: %v", err))
	}
	return e
}

// Access runs one reference.
func (e *Exclusion) Access(addr uint64) cache.Result {
	block := e.de.Geometry().Block(addr)

	// Sequential fetches within the current line never leave the line
	// register.
	if e.curValid && e.cur == block {
		e.stats.Record(cache.Hit, false)
		e.lineHits++
		return cache.Hit
	}
	e.cur = block
	e.curValid = true

	// A new line event: the FSM decides placement in the cache proper.
	res := e.de.Access(addr)
	if res == cache.Hit {
		e.stats.Record(cache.Hit, false)
		return cache.Hit
	}

	// The line is not in the cache. If the prefetcher already has it at
	// the buffer head, the fetch is covered: no next-level miss.
	if e.buf.HeadHit(block) {
		e.streamHits++
		e.stats.Record(cache.Hit, false)
		return cache.Hit
	}

	// A real miss: restart the prefetch stream behind it.
	e.buf.Restart(block)
	e.stats.Record(res, false)
	return res
}

// Stats returns the composite counters (misses are fetches that reached
// the next memory level).
func (e *Exclusion) Stats() cache.Stats { return e.stats }

// Extras returns the §6 helper-structure counters in the uniform
// cache.Counter shape.
func (e *Exclusion) Extras() []cache.Counter {
	return []cache.Counter{
		{Name: "line_hits", Value: e.lineHits},
		{Name: "stream_hits", Value: e.streamHits},
	}
}

// Inner exposes the wrapped dynamic exclusion cache (for FSM state
// inspection).
func (e *Exclusion) Inner() *core.Cache { return e.de }

// Geometry returns the cache shape.
func (e *Exclusion) Geometry() cache.Geometry { return e.de.Geometry() }
