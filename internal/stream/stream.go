// Package stream implements Jouppi's stream buffer [Jou90]: a small FIFO
// of sequentially prefetched lines started on each cache miss. The paper
// notes stream buffers reduce the effective miss *penalty* but do not
// change the number of conflict misses, so they are complementary to
// dynamic exclusion — and §6 lists "leave excluded instructions in the
// stream buffer" as one way to keep spatial locality with long lines.
package stream

import (
	"fmt"

	"repro/internal/cache"
)

// Buffer is a single stream buffer of sequential line addresses. As in
// Jouppi's design, only the head entry is matched; a head hit advances the
// FIFO and prefetches the next sequential line.
type Buffer struct {
	depth int
	head  uint64 // block number at the head
	left  int    // valid entries remaining
}

// NewBuffer returns a stream buffer holding depth lines.
func NewBuffer(depth int) (*Buffer, error) {
	if depth < 1 {
		return nil, fmt.Errorf("stream: depth must be positive, got %d", depth)
	}
	return &Buffer{depth: depth}, nil
}

// HeadHit reports whether block is at the head of the buffer; if so the
// buffer advances (consuming the entry and prefetching one more).
func (b *Buffer) HeadHit(block uint64) bool {
	if b.left > 0 && b.head == block {
		b.head++
		// The consumed slot is refilled by the prefetcher, so the count
		// stays at depth once the stream is established.
		if b.left < b.depth {
			b.left++
		}
		return true
	}
	return false
}

// Restart points the buffer at the line after block (the miss that
// triggered the prefetch) and fills it.
func (b *Buffer) Restart(block uint64) {
	b.head = block + 1
	b.left = b.depth
}

// Cache couples a direct-mapped cache with a stream buffer: misses that
// hit the buffer head are counted as hits (the line was already on its way
// from the next level) and are filled into the cache.
type Cache struct {
	geom  cache.Geometry
	tags  []uint64
	valid []bool
	buf   *Buffer
	stats cache.Stats

	streamHits uint64 // references served by the buffer head
}

// New returns a direct-mapped cache with a stream buffer of depth lines.
func New(geom cache.Geometry, depth int) (*Cache, error) {
	geom.Ways = 1
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	buf, err := NewBuffer(depth)
	if err != nil {
		return nil, err
	}
	n := geom.Sets()
	return &Cache{
		geom:  geom,
		tags:  make([]uint64, n),
		valid: make([]bool, n),
		buf:   buf,
	}, nil
}

// Must is New but panics on error.
func Must(geom cache.Geometry, depth int) *Cache {
	c, err := New(geom, depth)
	if err != nil {
		panic(err)
	}
	return c
}

// Access references addr.
func (c *Cache) Access(addr uint64) cache.Result {
	block := c.geom.Block(addr)
	set := block % uint64(len(c.tags))
	if c.valid[set] && c.tags[set] == block {
		c.stats.Record(cache.Hit, false)
		return cache.Hit
	}
	if c.buf.HeadHit(block) {
		// Prefetched: move into the cache without a next-level miss.
		c.tags[set] = block
		c.valid[set] = true
		c.streamHits++
		c.stats.Record(cache.Hit, false)
		return cache.Hit
	}
	evicted := c.valid[set]
	c.tags[set] = block
	c.valid[set] = true
	c.buf.Restart(block)
	c.stats.Record(cache.MissFill, evicted)
	return cache.MissFill
}

// Stats returns the accumulated counters.
func (c *Cache) Stats() cache.Stats { return c.stats }

// Extras returns the stream-buffer counter in the uniform cache.Counter
// shape.
func (c *Cache) Extras() []cache.Counter {
	return []cache.Counter{{Name: "stream_hits", Value: c.streamHits}}
}

// Geometry returns the cache's shape.
func (c *Cache) Geometry() cache.Geometry { return c.geom }
