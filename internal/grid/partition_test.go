package grid

import (
	"context"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/trace"
)

// partitionPlan builds a plan over synthetic sources without touching
// the benchmark suite.
func partitionPlan(t *testing.T, sizes, lines []uint64, policies []string) Plan {
	t.Helper()
	refs := make([]trace.Ref, 512)
	for i := range refs {
		refs[i] = trace.Ref{Addr: uint64(i * 7), Kind: trace.Instr}
	}
	mk := func(name string) Source {
		return NewSource(name, func() ([]trace.Ref, error) { return refs, nil })
	}
	plan, err := Spec{
		Sources:  []Source{mk("alpha"), mk("beta")},
		Kind:     "instr",
		Refs:     len(refs),
		Sizes:    sizes,
		Lines:    lines,
		Policies: policies,
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func allPending(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// TestPartitionColumns checks the shape of a full partition: one group
// per (source, line, eligible policy) triple spanning the whole size
// axis, with ineligible policies left to the per-cell remainder.
func TestPartitionColumns(t *testing.T) {
	plan := partitionPlan(t,
		[]uint64{4096, 8192, 16384},
		[]uint64{4, 16},
		[]string{"dm", "opt", "lru:ways=4"})
	pending := allPending(len(plan.Cells))
	groups := plan.Partition(pending, nil)

	// 2 sources × 2 lines × 2 eligible policies (dm, lru) = 8 columns.
	if len(groups) != 8 {
		t.Fatalf("got %d groups, want 8", len(groups))
	}
	covered := map[int]bool{}
	for _, g := range groups {
		if len(g.Indices) != 3 {
			t.Errorf("group has %d members, want the 3 sizes", len(g.Indices))
		}
		if g.NewColumn == nil {
			t.Error("group without constructor")
		}
		var label0 string
		for k, pos := range g.Indices {
			if covered[pos] {
				t.Errorf("cell %d in two groups", pos)
			}
			covered[pos] = true
			label := plan.Cells[pos].Label
			if strings.Contains(label, "/opt") {
				t.Errorf("opt cell %q grouped; opt has no column kernel", label)
			}
			// Same (source, line, policy): labels differ only in the size
			// field, and sizes ascend with member order.
			parts := strings.Split(label, "/")
			key := parts[0] + "/" + parts[2] + "/" + parts[3]
			if k == 0 {
				label0 = key
			} else if key != label0 {
				t.Errorf("group mixes %q and %q", label0, key)
			}
		}
		if col, err := g.NewColumn(); err != nil || len(col.Outcomes()) != len(g.Indices) {
			t.Errorf("constructor: col=%v err=%v", col, err)
		}
	}
	// The remainder is exactly the opt cells: 2 sources × 3 sizes × 2 lines.
	if got, want := len(plan.Cells)-len(covered), 12; got != want {
		t.Errorf("%d cells left ungrouped, want %d", got, want)
	}
}

// TestPartitionPendingSubset maps group indices into the pending slice,
// not the plan: a resumed sweep with holes mid-column must still group
// the surviving members.
func TestPartitionPendingSubset(t *testing.T) {
	plan := partitionPlan(t, []uint64{4096, 8192, 16384}, []uint64{4}, []string{"dm"})
	// Drop one mid-column cell (alpha/8192) as if it were journaled.
	var pending []int
	for i := range plan.Cells {
		if plan.Cells[i].Label == "alpha/8192/4/dm" {
			continue
		}
		pending = append(pending, i)
	}
	groups := plan.Partition(pending, nil)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	for _, g := range groups {
		for _, pos := range g.Indices {
			if pos < 0 || pos >= len(pending) {
				t.Fatalf("group index %d outside pending (len %d)", pos, len(pending))
			}
		}
		first := plan.Cells[pending[g.Indices[0]]].Label
		if strings.HasPrefix(first, "alpha/") && len(g.Indices) != 2 {
			t.Errorf("alpha column has %d members, want 2 after the journaled hole", len(g.Indices))
		}
		if strings.HasPrefix(first, "beta/") && len(g.Indices) != 3 {
			t.Errorf("beta column has %d members, want 3", len(g.Indices))
		}
	}
}

// TestPartitionSkipAndDegenerate: skipped cells stay per-cell, and
// single-size plans have no columns at all.
func TestPartitionSkipAndDegenerate(t *testing.T) {
	plan := partitionPlan(t, []uint64{4096, 8192}, []uint64{4}, []string{"dm"})
	skip := func(pi int) bool { return strings.HasPrefix(plan.Cells[pi].Label, "alpha/") }
	groups := plan.Partition(allPending(len(plan.Cells)), skip)
	if len(groups) != 1 {
		t.Fatalf("got %d groups, want just beta's", len(groups))
	}
	if l := plan.Cells[groups[0].Indices[0]].Label; !strings.HasPrefix(l, "beta/") {
		t.Errorf("surviving group starts at %q, want a beta cell", l)
	}

	single := partitionPlan(t, []uint64{4096}, []uint64{4}, []string{"dm"})
	if g := single.Partition(allPending(len(single.Cells)), nil); len(g) != 0 {
		t.Errorf("single-size plan produced %d groups", len(g))
	}
}

// TestPartitionRunGroupedMatchesCSV is the package-level byte-identity
// check: the same plan swept cell-by-cell and with columns renders the
// same CSV.
func TestPartitionRunGroupedMatchesCSV(t *testing.T) {
	plan := partitionPlan(t,
		[]uint64{2048, 4096, 8192, 16384},
		[]uint64{4, 16},
		[]string{"dm", "de", "lru", "fifo:ways=4", "opt", "de:store=hashed*4"})
	perCell, err := engine.Run(context.Background(), plan.Cells, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	groups := plan.Partition(allPending(len(plan.Cells)), nil)
	if len(groups) == 0 {
		t.Fatal("no groups on a geometry-heavy plan")
	}
	grouped, err := engine.RunGrouped(context.Background(), plan.Cells, groups, engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if _, err := plan.WriteCSV(&a, perCell); err != nil {
		t.Fatal(err)
	}
	if _, err := plan.WriteCSV(&b, grouped); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("column-partitioned CSV differs from cell-by-cell CSV")
	}
}
