package grid

import (
	"repro/internal/engine"
	"repro/internal/policy"
)

// Partition decomposes a set of pending plan cells into maximal
// multisim column units plus a cell-by-cell remainder (DESIGN.md §15).
// A column is every pending cell sharing one (source, line, policy)
// triple across the plan's size axis; columns with fewer than two
// members stay cell-by-cell (a one-cell column has nothing to share),
// as do cells of column-ineligible policies (policy.Spec.Column decides)
// and cells the caller's skip function excludes (nil skips nothing —
// sweep and serve use it to keep fault-injected cells on the per-cell
// path, where the injection wrapper actually runs).
//
// pending holds plan indices (positions into p.Cells), in the order the
// caller will hand the corresponding cells to engine.RunGrouped; the
// returned group Indices are positions into pending, NOT plan indices,
// so the groups can be passed straight alongside the caller's pending
// cell slice. Out-of-range pending entries are left ungrouped rather
// than rejected. Partitioning changes scheduling only: fingerprints,
// CSV row order, and per-cell results are the same either way, which
// the -multisim byte-identity tests pin.
func (p Plan) Partition(pending []int, skip func(planIdx int) bool) []engine.Group {
	nS, nL, nP := len(p.Spec.Sizes), len(p.Spec.Lines), len(p.Spec.Policies)
	if nS < 2 || nL == 0 || nP == 0 {
		return nil
	}
	specs := make([]policy.Spec, nP)
	parsed := make([]bool, nP)
	for i, pol := range p.Spec.Policies {
		sp, err := policy.Parse(pol)
		if err != nil {
			continue // Build already rejected this; be safe, not sorry
		}
		specs[i], parsed[i] = sp, true
	}
	type colKey struct{ src, line, pol int }
	type column struct {
		members []int // positions into pending
		sizes   []uint64
	}
	var keys []colKey
	cols := make(map[colKey]*column)
	for pos, pi := range pending {
		if pi < 0 || pi >= len(p.Cells) {
			continue
		}
		if skip != nil && skip(pi) {
			continue
		}
		polI := pi % nP
		rest := pi / nP
		lineI := rest % nL
		rest /= nL
		sizeI := rest % nS
		srcI := rest / nS
		if !parsed[polI] {
			continue
		}
		k := colKey{srcI, lineI, polI}
		c, ok := cols[k]
		if !ok {
			c = &column{}
			cols[k] = c
			keys = append(keys, k)
		}
		c.members = append(c.members, pos)
		c.sizes = append(c.sizes, p.Spec.Sizes[sizeI])
	}
	var groups []engine.Group
	for _, k := range keys {
		c := cols[k]
		if len(c.members) < 2 {
			continue
		}
		newCol, ok := specs[k.pol].Column(p.Spec.Lines[k.line], c.sizes)
		if !ok {
			continue
		}
		groups = append(groups, engine.Group{Indices: c.members, NewColumn: newCol})
	}
	return groups
}
