package grid

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/trace"
)

// TestFingerprintSchemePinned pins the "dynex-sweep/v1" fingerprint
// composition against a value from an actual pre-grid journal
// (cmd/dynex-sweep/testdata/seed_journal.jsonl). If this fails, old
// sweep checkpoints and serve job journals stop resuming.
func TestFingerprintSchemePinned(t *testing.T) {
	sources, err := BenchSources([]string{"gcc"}, "instr", 20000)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Spec{
		Sources: sources, Kind: "instr", Refs: 20000,
		Sizes: []uint64{4096}, Lines: []uint64{4}, Policies: []string{"dm", "de"},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantFPs := []string{
		"0e183d9b539909f13e6b15050baa306b", // gcc/4096/4/dm from seed_journal.jsonl
		"f8ae2f53c406b80acf438491194f32ca", // gcc/4096/4/de
	}
	for i, want := range wantFPs {
		if plan.FPs[i] != want {
			t.Errorf("FPs[%d] = %s, want %s (historical journal compatibility broken)", i, plan.FPs[i], want)
		}
	}
	if plan.Cells[0].Label != "gcc/4096/4/dm" {
		t.Errorf("label = %q, want gcc/4096/4/dm", plan.Cells[0].Label)
	}
}

// TestGridOrderAndCSV runs a small grid end to end and checks the CSV
// comes out in source-major grid order with the pinned header.
func TestGridOrderAndCSV(t *testing.T) {
	sources, err := BenchSources([]string{"gcc", "li"}, "instr", 5000)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Spec{
		Sources: sources, Kind: "instr", Refs: 5000,
		Sizes: []uint64{4096, 8192}, Lines: []uint64{4}, Policies: []string{"dm", "de"},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(plan.Cells), 8; got != want {
		t.Fatalf("cells = %d, want %d", got, want)
	}
	results, err := engine.Run(context.Background(), plan.Cells, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	failed, err := plan.WriteCSV(&buf, results)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 0 {
		t.Fatalf("failed cells: %v", failed)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "benchmark,kind,size,line,policy,miss_rate,misses,accesses" {
		t.Errorf("header = %q", lines[0])
	}
	wantPrefixes := []string{
		"gcc,instr,4096,4,dm,", "gcc,instr,4096,4,de,",
		"gcc,instr,8192,4,dm,", "gcc,instr,8192,4,de,",
		"li,instr,4096,4,dm,", "li,instr,4096,4,de,",
		"li,instr,8192,4,dm,", "li,instr,8192,4,de,",
	}
	if len(lines) != 1+len(wantPrefixes) {
		t.Fatalf("%d CSV lines, want %d:\n%s", len(lines), 1+len(wantPrefixes), buf.String())
	}
	for i, want := range wantPrefixes {
		if !strings.HasPrefix(lines[i+1], want) {
			t.Errorf("row %d = %q, want prefix %q", i, lines[i+1], want)
		}
	}
}

// TestWriteCSVWithholdsFailures pins the partial-failure contract: a
// failed cell's row is withheld and returned, the rest render.
func TestWriteCSVWithholdsFailures(t *testing.T) {
	sources, err := BenchSources([]string{"gcc"}, "instr", 5000)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Spec{
		Sources: sources, Kind: "instr", Refs: 5000,
		Sizes: []uint64{4096}, Lines: []uint64{4}, Policies: []string{"dm", "de"},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	results, err := engine.Run(context.Background(), plan.Cells, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	results[1].Err = errors.New("boom")
	var buf bytes.Buffer
	failed, err := plan.WriteCSV(&buf, results)
	if err != nil {
		t.Fatal(err)
	}
	if len(failed) != 1 || failed[0].Label != "gcc/4096/4/de" {
		t.Fatalf("failed = %v, want the de cell", failed)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 { // header + dm row
		t.Errorf("CSV lines = %d, want 2:\n%s", got, buf.String())
	}
}

// TestBenchSourcesValidation checks unknown names and kinds fail before
// any stream synthesis.
func TestBenchSourcesValidation(t *testing.T) {
	if _, err := BenchSources([]string{"nope"}, "instr", 10); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := BenchSources([]string{"gcc"}, "bogus", 10); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestSourceMaterializesOnce checks NewSource's sync.Once sharing: many
// concurrent cells see one materialization.
func TestSourceMaterializesOnce(t *testing.T) {
	calls := 0
	src := NewSource("x", func() ([]trace.Ref, error) {
		calls++
		return []trace.Ref{{Addr: 4}}, nil
	})
	cells := make([]engine.Cell, 8)
	plan, err := Spec{
		Sources: []Source{src}, Kind: "instr", Refs: 1,
		Sizes: []uint64{4096}, Lines: []uint64{4},
		Policies: []string{"dm", "de", "lru", "fifo", "victim", "stream", "de-stream", "opt"},
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	copy(cells, plan.Cells)
	if _, err := engine.Run(context.Background(), plan.Cells, engine.Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("source materialized %d times, want 1", calls)
	}
}
