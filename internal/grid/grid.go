// Package grid builds (stream × size × line × policy) simulation grids:
// the cell layout, checkpoint fingerprints, and CSV rendering shared by
// cmd/dynex-sweep and the dynex-serve job runner.
//
// Both consumers must agree byte-for-byte: a serve job's CSV has to be
// identical to a direct dynex-sweep run of the same cells, and a job
// journal has to be a valid sweep checkpoint (and vice versa), so the
// grid order, the label format, the fingerprint composition, and the CSV
// row rendering live here exactly once. The fingerprint scheme is the
// historical "dynex-sweep/v1" composition, pinned by
// cmd/dynex-sweep/testdata/seed_journal.jsonl — journals written before
// this package existed still resume.
package grid

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"sync"

	"repro/internal/cache"
	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/spec"
	"repro/internal/trace"
)

// Source is one reference stream of a grid: a synthetic benchmark or an
// uploaded trace. Stream is called on engine workers, so it must be safe
// for concurrent materialization; NewSource wraps a loader in a
// sync.Once for exactly that.
type Source struct {
	// Name labels the source in cell labels and the CSV benchmark
	// column ("gcc", or "trace:<digest>" for uploads).
	Name string
	// Stream materializes the source's references, shared by every cell
	// of the source.
	Stream func() ([]trace.Ref, error)
}

// NewSource wraps load in a sync.Once so the stream materializes at most
// once — on whichever engine worker reaches it first — and every cell of
// the source shares the slice.
func NewSource(name string, load func() ([]trace.Ref, error)) Source {
	var (
		once sync.Once
		refs []trace.Ref
		err  error
	)
	return Source{Name: name, Stream: func() ([]trace.Ref, error) {
		once.Do(func() { refs, err = load() })
		return refs, err
	}}
}

// BenchSources resolves suite benchmark names into grid sources for the
// given stream kind and length. An unknown name or kind is an error
// before any stream is synthesized.
func BenchSources(names []string, kind string, refs int) ([]Source, error) {
	switch kind {
	case "instr", "data", "mixed":
	default:
		return nil, fmt.Errorf("grid: unknown kind %q", kind)
	}
	sources := make([]Source, len(names))
	for i, name := range names {
		b, ok := spec.ByName(name)
		if !ok {
			return nil, fmt.Errorf("grid: unknown benchmark %q", name)
		}
		sources[i] = NewSource(b.Name, func() ([]trace.Ref, error) {
			switch kind {
			case "instr":
				return b.Instr(refs), nil
			case "data":
				return b.Data(refs), nil
			default:
				return b.Mixed(refs), nil
			}
		})
	}
	return sources, nil
}

// Spec declares a simulation grid. Kind and Refs identify the streams in
// checkpoint fingerprints (and Kind is echoed in the CSV), so two grids
// over the same sources with different lengths never share journal
// records.
type Spec struct {
	Sources  []Source
	Kind     string
	Refs     int
	Sizes    []uint64
	Lines    []uint64
	Policies []string // raw policy spec strings; labels and fingerprint parts
}

// NumCells returns the grid's cell count.
func (s Spec) NumCells() int {
	return len(s.Sources) * len(s.Sizes) * len(s.Lines) * len(s.Policies)
}

// Plan is a validated grid: engine cells in deterministic grid order
// (source-major, then size, line, policy — the serial loop nest
// dynex-sweep has always used) and the matching checkpoint fingerprints.
type Plan struct {
	Spec  Spec
	Cells []engine.Cell
	// FPs[i] is Cells[i]'s checkpoint fingerprint.
	FPs []string
}

// Build validates the whole grid — every policy spec parses, every
// geometry validates — before any simulation could start, and returns
// the cell plan. Fingerprints use the historical "dynex-sweep/v1"
// composition: (source, kind, refs, size, line, raw policy text).
func (s Spec) Build() (Plan, error) {
	if len(s.Sources) == 0 {
		return Plan{}, fmt.Errorf("grid: no sources")
	}
	if len(s.Sizes) == 0 || len(s.Lines) == 0 {
		return Plan{}, fmt.Errorf("grid: empty size or line list")
	}
	if len(s.Policies) == 0 {
		return Plan{}, fmt.Errorf("grid: empty policy list")
	}
	polSpecs := make([]policy.Spec, len(s.Policies))
	for i, pol := range s.Policies {
		sp, err := policy.Parse(pol)
		if err != nil {
			return Plan{}, fmt.Errorf("grid: %w", err)
		}
		polSpecs[i] = sp
	}
	p := Plan{
		Spec:  s,
		Cells: make([]engine.Cell, 0, s.NumCells()),
		FPs:   make([]string, 0, s.NumCells()),
	}
	for _, src := range s.Sources {
		for _, size := range s.Sizes {
			for _, line := range s.Lines {
				geom := cache.DM(size, line)
				if err := geom.Validate(); err != nil {
					return Plan{}, err
				}
				for pi, pol := range s.Policies {
					cell := polSpecs[pi].Cell()
					cell.Geometry = geom
					cell.Label = fmt.Sprintf("%s/%d/%d/%s", src.Name, size, line, pol)
					cell.Stream = src.Stream
					p.Cells = append(p.Cells, cell)
					p.FPs = append(p.FPs, checkpoint.Fingerprint(
						"dynex-sweep/v1", src.Name, s.Kind, strconv.Itoa(s.Refs),
						strconv.FormatUint(size, 10), strconv.FormatUint(line, 10), pol))
				}
			}
		}
	}
	return p, nil
}

// Header is the CSV header row shared by every grid consumer.
func Header() []string {
	return []string{"benchmark", "kind", "size", "line", "policy", "miss_rate", "misses", "accesses"}
}

// WriteCSV renders the result table as CSV in grid order — results[i]
// must describe Cells[i], which engine.Run guarantees. Rows for failed
// cells are withheld from the CSV and returned instead, matching
// dynex-sweep's partial-failure semantics; the caller reports them on
// its own diagnostic channel.
func (p Plan) WriteCSV(w io.Writer, results []engine.Result) ([]engine.Result, error) {
	if len(results) != len(p.Cells) {
		return nil, fmt.Errorf("grid: %d results for %d cells", len(results), len(p.Cells))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(Header()); err != nil {
		return nil, err
	}
	var failed []engine.Result
	i := 0
	for _, src := range p.Spec.Sources {
		for _, size := range p.Spec.Sizes {
			for _, line := range p.Spec.Lines {
				for _, pol := range p.Spec.Policies {
					res := results[i]
					i++
					if res.Err != nil {
						failed = append(failed, res)
						continue
					}
					rec := []string{
						src.Name, p.Spec.Kind,
						strconv.FormatUint(size, 10),
						strconv.FormatUint(line, 10),
						pol,
						strconv.FormatFloat(res.Stats.MissRate(), 'f', 6, 64),
						strconv.FormatUint(res.Stats.Misses, 10),
						strconv.FormatUint(res.Stats.Accesses, 10),
					}
					if err := cw.Write(rec); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	cw.Flush()
	return failed, cw.Error()
}
