package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/patterns"
	"repro/internal/trace"
)

const size = 1 << 10

func geomDM() cache.Geometry { return cache.DM(size, 4) }

// The §3 analytic optimal rates, verified against the simulator.

func TestOptimalWithinLoop(t *testing.T) {
	refs := patterns.WithinLoop(10).Refs(0, size)
	got := SimulateDM(refs, geomDM(), false).MissRate()
	if want := patterns.WithinLoopOPT(10); got != want {
		t.Errorf("OPT (ab)^10 = %v, want %v", got, want)
	}
}

func TestOptimalLoopLevels(t *testing.T) {
	refs := patterns.LoopLevels(10, 10).Refs(0, size)
	got := SimulateDM(refs, geomDM(), false).MissRate()
	if want := patterns.LoopLevelsOPT(10, 10); got != want {
		t.Errorf("OPT (a^10 b)^10 = %v, want %v", got, want)
	}
}

func TestOptimalBetweenLoops(t *testing.T) {
	refs := patterns.BetweenLoops(10, 10).Refs(0, size)
	got := SimulateDM(refs, geomDM(), false).MissRate()
	if want := patterns.BetweenLoopsOPT(10, 10); got != want {
		t.Errorf("OPT (a^10 b^10)^10 = %v, want %v", got, want)
	}
}

func TestOptimalThreeWay(t *testing.T) {
	refs := patterns.ThreeWay(10).Refs(0, size)
	got := SimulateDM(refs, geomDM(), false).MissRate()
	if want := patterns.ThreeWayOPT(10); got != want {
		t.Errorf("OPT (abc)^10 = %v, want %v", got, want)
	}
}

func TestOptimalNeverWorseThanDirectMapped(t *testing.T) {
	// Property: on any reference stream, the optimal DM cache has at most
	// as many misses as a conventional DM cache of the same geometry.
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		refs := make([]trace.Ref, int(n)+1)
		for i := range refs {
			// Confine to a few conflicting pages to force conflicts.
			refs[i] = trace.Ref{Addr: uint64(rng.Intn(4))*size + uint64(rng.Intn(64))*4}
		}
		dm := cache.MustDirectMapped(geomDM())
		cache.RunRefs(dm, refs)
		optStats := SimulateDM(refs, geomDM(), false)
		if optStats.Accesses != dm.Stats().Accesses {
			return false
		}
		return optStats.Misses <= dm.Stats().Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOptimalNeverWorseThanDynamicExclusion(t *testing.T) {
	// Property: dynamic exclusion can approach but not beat optimal.
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		refs := make([]trace.Ref, int(n)+1)
		for i := range refs {
			refs[i] = trace.Ref{Addr: uint64(rng.Intn(4))*size + uint64(rng.Intn(64))*4}
		}
		de := core.Must(core.Config{Geometry: geomDM(), Store: core.NewTableStore(false)})
		cache.RunRefs(de, refs)
		optStats := SimulateDM(refs, geomDM(), false)
		return optStats.Misses <= de.Stats().Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDynamicExclusionWithinTwoMissesOnPaperPatterns(t *testing.T) {
	// The paper's claim for every §3 pattern: "a direct-mapped cache with
	// dynamic exclusion has at most two more misses than an optimal
	// direct-mapped cache" regardless of initial state. Check both
	// cold-start defaults.
	specs := []patterns.Spec{
		patterns.BetweenLoops(10, 10),
		patterns.LoopLevels(10, 10),
		patterns.WithinLoop(10),
	}
	for _, def := range []bool{false, true} {
		for _, spec := range specs {
			refs := spec.Refs(0, size)
			de := core.Must(core.Config{Geometry: geomDM(), Store: core.NewTableStore(def)})
			cache.RunRefs(de, refs)
			optMisses := SimulateDM(refs, geomDM(), false).Misses
			if de.Stats().Misses > optMisses+2 {
				t.Errorf("%s (default h=%v): DE misses %d, OPT %d; want within 2",
					spec.Name, def, de.Stats().Misses, optMisses)
			}
		}
	}
}

func TestNextUses(t *testing.T) {
	refs := []trace.Ref{{Addr: 0}, {Addr: 4}, {Addr: 0}, {Addr: 16}}
	// 4B lines: blocks 0,1,0,4.
	next := nextUses(refs, geomDM())
	want := []int64{2, infinity, infinity, infinity}
	for i := range want {
		if next[i] != want[i] {
			t.Errorf("next[%d] = %d, want %d", i, next[i], want[i])
		}
	}
}

func TestLastLineCollapsesSequentialRefs(t *testing.T) {
	g := cache.DM(size, 16)
	// Four sequential instructions in one line, repeated: without the
	// buffer each head ref decides; in-run refs always hit.
	var refs []trace.Ref
	for rep := 0; rep < 3; rep++ {
		for a := uint64(0); a < 16; a += 4 {
			refs = append(refs, trace.Ref{Addr: a})
		}
	}
	s := SimulateDM(refs, g, true)
	if s.Accesses != 12 {
		t.Fatalf("accesses = %d, want 12", s.Accesses)
	}
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1 (cold only)", s.Misses)
	}
}

func TestLastLineAtLeastAsGoodOnConflicts(t *testing.T) {
	// With a last-line buffer an excluded line still serves its
	// sequential refs; the (ab)-style line conflict at 16B lines.
	g := cache.DM(size, 16)
	var refs []trace.Ref
	for rep := 0; rep < 10; rep++ {
		for a := uint64(0); a < 16; a += 4 {
			refs = append(refs, trace.Ref{Addr: a})
		}
		for a := uint64(size); a < size+16; a += 4 {
			refs = append(refs, trace.Ref{Addr: a})
		}
	}
	with := SimulateDM(refs, g, true)
	without := SimulateDM(refs, g, false)
	if with.Misses > without.Misses {
		t.Errorf("last-line hurt optimal: %d > %d", with.Misses, without.Misses)
	}
	// 80 refs; buffer serves 3 of every 4: only 20 head refs decide; of
	// those one line is kept (hits 9 times), so 11 misses.
	if with.Misses != 11 {
		t.Errorf("misses = %d, want 11", with.Misses)
	}
}

func TestSetAssocOptimalBasic(t *testing.T) {
	// 2-way set: (ab)^10 fits entirely; only cold misses.
	g := cache.Geometry{Size: size, LineSize: 4, Ways: 2}
	refs := patterns.WithinLoop(10).Refs(0, size/2) // both map to one set
	s := SimulateSetAssoc(refs, g)
	if s.Misses != 2 {
		t.Errorf("misses = %d, want 2", s.Misses)
	}
}

func TestSetAssocOptimalBypasses(t *testing.T) {
	// (abc)^10 in a 2-way set: optimal keeps two of the three resident
	// and bypasses the third: 2 cold + 10 misses for c... the exchange:
	// per cycle exactly one miss after warmup.
	g := cache.Geometry{Size: size, LineSize: 4, Ways: 2}
	refs := patterns.ThreeWay(10).Refs(0, size/2)
	s := SimulateSetAssoc(refs, g)
	if s.Misses != 12 {
		t.Errorf("misses = %d, want 12 (2 cold + 10 steady)", s.Misses)
	}
	if s.Bypasses == 0 {
		t.Error("optimal set-associative should bypass here")
	}
}

func TestSetAssocOptimalNeverWorseThanLRU(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		g := cache.Geometry{Size: 256, LineSize: 4, Ways: 4}
		refs := make([]trace.Ref, int(n)+1)
		for i := range refs {
			refs[i] = trace.Ref{Addr: uint64(rng.Intn(1 << 11))}
		}
		lru := cache.MustSetAssoc(g, cache.LRU, 1)
		cache.RunRefs(lru, refs)
		return SimulateSetAssoc(refs, g).Misses <= lru.Stats().Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFullyAssociativeOptimal(t *testing.T) {
	g := cache.Geometry{Size: 16, LineSize: 4, Ways: 0} // 4 lines, fully assoc
	// 5 blocks round-robin: Belady keeps 4... with bypass the best is to
	// pin 3 and alternate? Just sanity-check bounds.
	var refs []trace.Ref
	for rep := 0; rep < 20; rep++ {
		for b := uint64(0); b < 5; b++ {
			refs = append(refs, trace.Ref{Addr: b * 4})
		}
	}
	s := SimulateSetAssoc(refs, g)
	lru := cache.MustSetAssoc(g, cache.LRU, 1)
	cache.RunRefs(lru, refs)
	if s.Misses >= lru.Stats().Misses {
		t.Errorf("OPT %d misses, LRU %d; OPT should win on cyclic overflow", s.Misses, lru.Stats().Misses)
	}
}

func TestMissRateDMWrapper(t *testing.T) {
	refs := patterns.WithinLoop(10).Refs(0, size)
	if got := MissRateDM(refs, geomDM(), false); got != patterns.WithinLoopOPT(10) {
		t.Errorf("MissRateDM = %v", got)
	}
}

func TestSimulateDMPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on invalid geometry")
		}
	}()
	SimulateDM(nil, cache.Geometry{Size: 3, LineSize: 4}, false)
}

// TestSimulateDMWindowPartition checks the per-reference attribution of
// SimulateDMWindow: successive windows differ by exactly the one access
// at the window boundary, and the windows telescope back to the full-
// stream stats. This holds with and without the last-line buffer.
func TestSimulateDMWindowPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	refs := make([]trace.Ref, 300)
	for i := range refs {
		// Few blocks over few sets so conflicts, hits, and bypasses all occur;
		// short sequential runs exercise the last-line collapse.
		if i > 0 && rng.Intn(3) == 0 {
			refs[i] = trace.Ref{Addr: refs[i-1].Addr + 4}
		} else {
			refs[i] = trace.Ref{Addr: uint64(rng.Intn(64)) * 4}
		}
	}
	for _, lastLine := range []bool{false, true} {
		geom := cache.DM(64, 16)
		full := SimulateDM(refs, geom, lastLine)
		if got := SimulateDMWindow(refs, geom, lastLine, 0); got != full {
			t.Fatalf("lastLine=%v: window(0) = %+v, want %+v", lastLine, got, full)
		}
		prev := full
		for k := 1; k <= len(refs); k++ {
			win := SimulateDMWindow(refs, geom, lastLine, k)
			if win.Accesses != uint64(len(refs)-k) {
				t.Fatalf("lastLine=%v warmup=%d: accesses %d, want %d",
					lastLine, k, win.Accesses, len(refs)-k)
			}
			// prev - win is the single access at position k-1.
			d := prev.Sub(win)
			if d.Accesses != 1 || d.Hits+d.Misses != 1 {
				t.Fatalf("lastLine=%v warmup=%d: boundary delta %+v", lastLine, k, d)
			}
			prev = win
		}
		if prev.Accesses != 0 {
			t.Fatalf("lastLine=%v: window(len) not empty: %+v", lastLine, prev)
		}
	}
}

// TestSimulateDMWindowNegativeWarmup checks warmup < 0 behaves as 0.
func TestSimulateDMWindowNegativeWarmup(t *testing.T) {
	refs := patterns.WithinLoop(10).Refs(0, size)
	if got, want := SimulateDMWindow(refs, geomDM(), false, -5), SimulateDM(refs, geomDM(), false); got != want {
		t.Errorf("window(-5) = %+v, want %+v", got, want)
	}
}
