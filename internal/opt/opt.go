// Package opt implements optimal (Belady-style) replacement simulators.
//
// The paper's yardstick is the "optimal direct-mapped cache": blocks are
// placed exactly where a direct-mapped cache would place them, but the
// replacement decision uses future knowledge — on a conflict the cache
// retains whichever of the two blocks is referenced sooner, and a block
// may be passed to the CPU without ever being stored (bypass). Belady
// [Bel66] proved the analogous policy optimal for page replacement; per
// cache set the same exchange argument applies.
//
// Because these simulators need the future, they run over a materialized
// reference slice in two passes: a backward pass computing each
// reference's next-use distance, then a forward simulation.
package opt

import (
	"math"

	"repro/internal/cache"
	"repro/internal/trace"
)

// infinity marks a reference whose block is never used again.
const infinity = math.MaxInt64

// nextUses returns, for every position i, the next position at which
// refs[i]'s block is referenced again (infinity if never). Blocks are
// geom-sized.
func nextUses(refs []trace.Ref, geom cache.Geometry) []int64 {
	next := make([]int64, len(refs))
	last := make(map[uint64]int64, 1024)
	for i := len(refs) - 1; i >= 0; i-- {
		b := geom.Block(refs[i].Addr)
		if j, ok := last[b]; ok {
			next[i] = j
		} else {
			next[i] = infinity
		}
		last[b] = int64(i)
	}
	return next
}

// SimulateDM runs the optimal direct-mapped cache with bypass over refs.
// If useLastLine is true the simulator also gets the §6 last-line buffer:
// consecutive references to the most recently fetched line hit without a
// replacement decision, matching what the dynamic exclusion hardware is
// given in the long-line experiments.
func SimulateDM(refs []trace.Ref, geom cache.Geometry, useLastLine bool) cache.Stats {
	return SimulateDMWindow(refs, geom, useLastLine, 0)
}

// SimulateDMWindow is SimulateDM restricted to a measurement window: the
// replacement decisions still use the whole stream's future knowledge,
// but only the outcomes of refs[warmup:] are counted. That is the optimal
// policy's steady-state window, directly comparable to the online
// policies' warmup-subtracted Stats (cache.Stats.Sub after a warmup
// snapshot). warmup 0 reproduces SimulateDM exactly.
func SimulateDMWindow(refs []trace.Ref, geom cache.Geometry, useLastLine bool, warmup int) cache.Stats {
	geom.Ways = 1
	if err := geom.Validate(); err != nil {
		panic("opt: " + err.Error())
	}
	if warmup < 0 {
		warmup = 0
	}
	var stats cache.Stats
	// count records the outcome of the reference at original stream
	// position pos, discarding warmup-window events.
	count := func(pos int, r cache.Result, evicted bool) {
		if pos >= warmup {
			stats.Record(r, evicted)
		}
	}

	work := refs
	var orig []int // work index -> original refs index (nil = identity)
	if useLastLine {
		// Collapse runs of same-line references: the in-run references
		// are unconditional buffer hits; only run heads reach the cache.
		work = make([]trace.Ref, 0, len(refs))
		orig = make([]int, 0, len(refs))
		haveLast := false
		var last uint64
		for i, r := range refs {
			b := geom.Block(r.Addr)
			if haveLast && b == last {
				count(i, cache.Hit, false)
				continue
			}
			haveLast = true
			last = b
			work = append(work, r)
			orig = append(orig, i)
		}
	}

	next := nextUses(work, geom)
	nsets := geom.Sets()
	resBlock := make([]uint64, nsets)
	resNext := make([]int64, nsets)
	valid := make([]bool, nsets)

	for i, r := range work {
		pos := i
		if orig != nil {
			pos = orig[i]
		}
		b := geom.Block(r.Addr)
		set := b % nsets
		if valid[set] && resBlock[set] == b {
			resNext[set] = next[i]
			count(pos, cache.Hit, false)
			continue
		}
		switch {
		case !valid[set]:
			valid[set] = true
			resBlock[set] = b
			resNext[set] = next[i]
			count(pos, cache.MissFill, false)
		case next[i] < resNext[set]:
			// The newcomer is needed sooner: replace.
			resBlock[set] = b
			resNext[set] = next[i]
			count(pos, cache.MissFill, true)
		default:
			// The resident is needed sooner (or equally late): bypass.
			count(pos, cache.MissBypass, false)
		}
	}
	return stats
}

// SimulateSetAssoc runs Belady-optimal replacement with bypass on an
// n-way set-associative cache (Ways = 0 means fully associative). Used by
// the related-work comparisons.
func SimulateSetAssoc(refs []trace.Ref, geom cache.Geometry) cache.Stats {
	if err := geom.Validate(); err != nil {
		panic("opt: " + err.Error())
	}
	next := nextUses(refs, geom)
	nsets := geom.Sets()
	ways := geom.WaysPerSet()
	type slot struct {
		block uint64
		next  int64
		valid bool
	}
	sets := make([][]slot, nsets)
	backing := make([]slot, int(nsets)*ways)
	for i := range sets {
		sets[i], backing = backing[:ways:ways], backing[ways:]
	}

	var stats cache.Stats
	for i, r := range refs {
		b := geom.Block(r.Addr)
		set := sets[b%nsets]
		hitIdx := -1
		for w := range set {
			if set[w].valid && set[w].block == b {
				hitIdx = w
				break
			}
		}
		if hitIdx >= 0 {
			set[hitIdx].next = next[i]
			stats.Record(cache.Hit, false)
			continue
		}
		empty, worst := -1, -1
		for w := range set {
			if !set[w].valid {
				empty = w
				break
			}
			if worst < 0 || set[w].next > set[worst].next {
				worst = w
			}
		}
		switch {
		case empty >= 0:
			set[empty] = slot{block: b, next: next[i], valid: true}
			stats.Record(cache.MissFill, false)
		case next[i] < set[worst].next:
			// The newcomer is needed before the farthest-future resident.
			set[worst] = slot{block: b, next: next[i], valid: true}
			stats.Record(cache.MissFill, true)
		default:
			stats.Record(cache.MissBypass, false)
		}
	}
	return stats
}

// MissRateDM is a convenience wrapper returning just the miss rate of the
// optimal direct-mapped cache.
func MissRateDM(refs []trace.Ref, geom cache.Geometry, useLastLine bool) float64 {
	return SimulateDM(refs, geom, useLastLine).MissRate()
}
