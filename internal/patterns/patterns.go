// Package patterns generates the canonical loop-conflict reference
// patterns of Section 3 of the paper, together with their analytic miss
// rates for a conventional direct-mapped cache and for an optimal
// direct-mapped cache (Belady replacement with bypass).
//
// In the paper's notation, exponents repeat a subsequence: (a¹⁰b)¹⁰ is ten
// iterations of "a ten times, then b once". The instructions a, b, c, ...
// are distinct addresses that all map to the same line of a direct-mapped
// cache, which the generators arrange by spacing them exactly one cache
// size apart.
package patterns

import "repro/internal/trace"

// Step is one run of repeated references to a single instruction.
type Step struct {
	Sym   byte // which conflicting instruction: 'a', 'b', 'c', ...
	Count int  // how many consecutive executions
}

// Spec is a conflict pattern: an inner sequence of steps repeated Outer
// times. All symbols map to the same direct-mapped cache line.
type Spec struct {
	Name  string
	Inner []Step
	Outer int
}

// Refs expands the pattern into a reference slice. base is the address of
// instruction 'a'; conflictStride is the distance between conflicting
// instructions and must be the direct-mapped cache size (so every symbol
// maps to the same line).
func (s Spec) Refs(base, conflictStride uint64) []trace.Ref {
	n := 0
	for _, st := range s.Inner {
		n += st.Count
	}
	out := make([]trace.Ref, 0, n*s.Outer)
	for i := 0; i < s.Outer; i++ {
		for _, st := range s.Inner {
			addr := base + uint64(st.Sym-'a')*conflictStride
			for j := 0; j < st.Count; j++ {
				out = append(out, trace.Ref{Addr: addr, Kind: trace.Instr})
			}
		}
	}
	return out
}

// Len returns the total number of references the pattern expands to.
func (s Spec) Len() int {
	n := 0
	for _, st := range s.Inner {
		n += st.Count
	}
	return n * s.Outer
}

// BetweenLoops is the paper's first pattern, (aᴺ bᴺ)ᴹ: two separate loops
// executed alternately (conflict between loops). A conventional
// direct-mapped cache is already optimal here.
func BetweenLoops(n, m int) Spec {
	return Spec{
		Name:  "between-loops",
		Inner: []Step{{'a', n}, {'b', n}},
		Outer: m,
	}
}

// LoopLevels is the paper's second pattern, (aᴺ b)ᴹ: an instruction inside
// a loop conflicting with one outside it (conflict between loop levels).
// Every execution of b costs a conventional cache two misses; an optimal
// cache keeps a resident and lets b bypass.
func LoopLevels(n, m int) Spec {
	return Spec{
		Name:  "loop-levels",
		Inner: []Step{{'a', n}, {'b', 1}},
		Outer: m,
	}
}

// WithinLoop is the paper's third pattern, (ab)ᴺ: two instructions in the
// same loop body. A conventional cache thrashes (100% misses); an optimal
// cache keeps one of them resident.
func WithinLoop(n int) Spec {
	return Spec{
		Name:  "within-loop",
		Inner: []Step{{'a', 1}, {'b', 1}},
		Outer: n,
	}
}

// ThreeWay is the (abc)ᴺ pattern of Section 4: three instructions in one
// loop mapping to a single line. Both a conventional direct-mapped cache
// and the single-sticky-bit dynamic exclusion FSM miss on essentially all
// references; locking one instruction (multi-sticky extension) can help.
func ThreeWay(n int) Spec {
	return Spec{
		Name:  "three-way",
		Inner: []Step{{'a', 1}, {'b', 1}, {'c', 1}},
		Outer: n,
	}
}

// Analytic miss rates (fraction of references that miss), from Section 3.

// BetweenLoopsDM is the conventional direct-mapped miss rate of (aᴺbᴺ)ᴹ:
// each loop is reloaded once per outer iteration.
func BetweenLoopsDM(n, m int) float64 {
	return float64(2*m) / float64(2*n*m)
}

// BetweenLoopsOPT equals BetweenLoopsDM: a direct-mapped cache is already
// optimal for this pattern.
func BetweenLoopsOPT(n, m int) float64 { return BetweenLoopsDM(n, m) }

// LoopLevelsDM is the conventional direct-mapped miss rate of (aᴺb)ᴹ: b
// misses and knocks out a, so a misses again on the next iteration.
func LoopLevelsDM(n, m int) float64 {
	return float64(2*m) / float64((n+1)*m)
}

// LoopLevelsOPT is the optimal direct-mapped miss rate of (aᴺb)ᴹ: a is
// loaded once and kept; b always bypasses.
func LoopLevelsOPT(n, m int) float64 {
	return float64(1+m) / float64((n+1)*m)
}

// WithinLoopDM is the conventional direct-mapped miss rate of (ab)ᴺ:
// complete thrashing.
func WithinLoopDM(n int) float64 { return 1.0 }

// WithinLoopOPT is the optimal direct-mapped miss rate of (ab)ᴺ: one
// instruction is kept and hits after the first iteration.
func WithinLoopOPT(n int) float64 {
	return float64(n+1) / float64(2*n)
}

// ThreeWayDM is the conventional direct-mapped miss rate of (abc)ᴺ.
func ThreeWayDM(n int) float64 { return 1.0 }

// ThreeWayOPT is the optimal direct-mapped miss rate of (abc)ᴺ: one of the
// three is kept resident (after its first load) and hits every cycle.
func ThreeWayOPT(n int) float64 {
	return float64(2*n+1) / float64(3*n)
}
