package patterns

import (
	"testing"

	"repro/internal/trace"
)

func TestRefsExpansion(t *testing.T) {
	s := WithinLoop(3) // (ab)^3
	refs := s.Refs(0x1000, 0x8000)
	if len(refs) != 6 || s.Len() != 6 {
		t.Fatalf("len = %d / %d, want 6", len(refs), s.Len())
	}
	wantAddrs := []uint64{0x1000, 0x9000, 0x1000, 0x9000, 0x1000, 0x9000}
	for i, w := range wantAddrs {
		if refs[i].Addr != w {
			t.Errorf("ref %d = %#x, want %#x", i, refs[i].Addr, w)
		}
		if refs[i].Kind != trace.Instr {
			t.Errorf("ref %d kind = %v, want Instr", i, refs[i].Kind)
		}
	}
}

func TestBetweenLoopsShape(t *testing.T) {
	s := BetweenLoops(10, 10)
	if s.Len() != 200 {
		t.Errorf("Len = %d, want 200", s.Len())
	}
	refs := s.Refs(0, 1<<15)
	// First 10 refs are a, next 10 are b.
	for i := 0; i < 10; i++ {
		if refs[i].Addr != 0 {
			t.Fatalf("ref %d should be a", i)
		}
		if refs[10+i].Addr != 1<<15 {
			t.Fatalf("ref %d should be b", 10+i)
		}
	}
}

func TestLoopLevelsShape(t *testing.T) {
	s := LoopLevels(10, 10)
	if s.Len() != 110 {
		t.Errorf("Len = %d, want 110", s.Len())
	}
}

func TestThreeWayShape(t *testing.T) {
	refs := ThreeWay(2).Refs(0, 100)
	wantAddrs := []uint64{0, 100, 200, 0, 100, 200}
	if len(refs) != 6 {
		t.Fatalf("len = %d", len(refs))
	}
	for i, w := range wantAddrs {
		if refs[i].Addr != w {
			t.Errorf("ref %d = %d, want %d", i, refs[i].Addr, w)
		}
	}
}

func TestPaperAnalyticRates(t *testing.T) {
	// Section 3 of the paper gives these exact numbers for N = M = 10.
	const eps = 1e-9
	check := func(name string, got, want float64) {
		t.Helper()
		if diff := got - want; diff > eps || diff < -eps {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("BetweenLoopsDM", BetweenLoopsDM(10, 10), 0.10)
	check("BetweenLoopsOPT", BetweenLoopsOPT(10, 10), 0.10)
	check("LoopLevelsDM", LoopLevelsDM(10, 10), 2.0/11.0) // ≈18%
	check("LoopLevelsOPT", LoopLevelsOPT(10, 10), 0.10)
	check("WithinLoopDM", WithinLoopDM(10), 1.00)
	check("WithinLoopOPT", WithinLoopOPT(10), 0.55)
	check("ThreeWayDM", ThreeWayDM(10), 1.00)
	check("ThreeWayOPT", ThreeWayOPT(10), 0.70)
}

func TestNamesAssigned(t *testing.T) {
	for _, s := range []Spec{BetweenLoops(2, 2), LoopLevels(2, 2), WithinLoop(2), ThreeWay(2)} {
		if s.Name == "" {
			t.Errorf("pattern with empty name: %+v", s)
		}
	}
}
