// Package obs is the repo's observability layer: a stdlib-only metrics
// registry (typed counters, gauges, and fixed-bucket histograms with
// bounded label cardinality) exposed in Prometheus text exposition
// format, a lightweight span model for the JSONL event trace, and the
// unified debug surface every CLI and the serve daemon mount behind
// -debug-addr (/debug/vars, /debug/pprof/*, /metrics).
//
// The layer is built for passivity: instrument updates are a few atomic
// operations (histograms take a short mutex), nothing on the simulation
// batch hot path touches it, and scraping walks a snapshot — a scrape
// can never block a simulation. DESIGN.md §13 documents the model and
// the dynexcheck obs-metrics rule that machine-checks the conventions
// (metric names are package-level consts, each registered exactly once,
// label cardinality bounded).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a process- or server-scoped set of metric families.
// Registration is construct-time and panics on conflict: a duplicate
// name or an invalid name is a programming error, caught by tests and
// the dynexcheck obs-metrics rule, never a runtime condition to handle.
type Registry struct {
	mu   sync.Mutex
	fams []*family // exposition order = registration order
}

// Default is the process-wide registry the CLIs publish to; dynex-serve
// creates one Registry per server instead so restarted and test servers
// never collide.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// metric family kinds, as rendered in the # TYPE exposition line.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one registered metric name: its metadata plus the labeled
// series map (scalar metrics are the one series with an empty key).
type family struct {
	name, help, kind string
	labels           []string  // label names; empty for scalar metrics
	buckets          []float64 // histogram upper bounds, ascending
	maxSeries        int       // label cardinality bound (vec metrics)
	fn               func() float64

	mu     sync.Mutex
	series map[string]*series
	order  []string // series keys in first-touch order
}

// series is one (metric, label values) time series. Counters count in
// integers; gauges store float64 bits; histograms bucket under their
// own mutex (observations happen per finished cell, not per reference,
// so the lock is uncontended in practice).
type series struct {
	labelValues []string

	count atomic.Uint64 // counter value
	bits  atomic.Uint64 // gauge float64 bits

	hmu     sync.Mutex
	hcounts []uint64 // per-bucket cumulative-format counts (non-cumulative here)
	hsum    float64
	hn      uint64
}

// overflowValue replaces every label value of a series past a vec's
// cardinality bound, so an unbounded label source (tenant names) can
// never grow the registry without bound.
const overflowValue = "_overflow"

// register adds a family or panics on a duplicate or invalid name.
func (r *Registry) register(f *family) *family {
	if !validName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", f.name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.fams {
		if have.name == f.name {
			panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
		}
	}
	f.series = map[string]*series{}
	r.fams = append(r.fams, f)
	return f
}

// validName accepts the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// get returns the series for the label values, creating it under the
// cardinality bound; past the bound, every new combination collapses
// into the shared overflow series.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	if f.maxSeries > 0 && len(f.series) >= f.maxSeries {
		values = make([]string, len(f.labels))
		for i := range values {
			values[i] = overflowValue
		}
		key = strings.Join(values, "\xff")
		if s, ok := f.series[key]; ok {
			return s
		}
	}
	s := &series{labelValues: append([]string(nil), values...)}
	if f.kind == kindHistogram {
		s.hcounts = make([]uint64, len(f.buckets)+1)
	}
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter is a monotonically increasing count.
type Counter struct{ s *series }

// Inc adds 1.
//
//dynexcheck:hot
func (c *Counter) Inc() { c.s.count.Add(1) }

// Add adds n.
//
//dynexcheck:hot
func (c *Counter) Add(n uint64) { c.s.count.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.s.count.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ s *series }

// Set stores v.
//
//dynexcheck:hot
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta (negative to decrease).
//
//dynexcheck:hot
func (g *Gauge) Add(delta float64) {
	for {
		old := g.s.bits.Load()
		if g.s.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// Histogram is a fixed-bucket latency/size distribution.
type Histogram struct {
	f *family
	s *series
}

// Observe books one observation.
//
//dynexcheck:hot
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.f.buckets, v) // first bucket with bound >= v
	h.s.hmu.Lock()
	h.s.hcounts[i]++
	h.s.hsum += v
	h.s.hn++
	h.s.hmu.Unlock()
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.s.hmu.Lock()
	defer h.s.hmu.Unlock()
	return h.s.hn
}

// NewCounter registers a scalar counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, kind: kindCounter})
	return &Counter{s: f.get(nil)}
}

// NewGauge registers a scalar gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, kind: kindGauge})
	return &Gauge{s: f.get(nil)}
}

// NewGaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindGauge, fn: fn})
}

// NewHistogram registers a scalar histogram over the given ascending
// bucket upper bounds (an implicit +Inf bucket is always appended).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	f := r.register(&family{name: name, help: help, kind: kindHistogram, buckets: checkBuckets(name, buckets)})
	return &Histogram{f: f, s: f.get(nil)}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// NewCounterVec registers a labeled counter family. maxSeries bounds the
// label cardinality: combinations past it collapse into one overflow
// series, so an unbounded label source cannot grow the registry.
func (r *Registry) NewCounterVec(name, help string, labels []string, maxSeries int) *CounterVec {
	return &CounterVec{f: r.register(&family{
		name: name, help: help, kind: kindCounter,
		labels: append([]string(nil), labels...), maxSeries: checkMax(name, maxSeries),
	})}
}

// WithLabelValues returns the series for the label values, in the order
// the labels were declared.
func (v *CounterVec) WithLabelValues(values ...string) *Counter {
	return &Counter{s: v.f.get(values)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// NewGaugeVec registers a labeled gauge family (cardinality-bounded like
// NewCounterVec).
func (r *Registry) NewGaugeVec(name, help string, labels []string, maxSeries int) *GaugeVec {
	return &GaugeVec{f: r.register(&family{
		name: name, help: help, kind: kindGauge,
		labels: append([]string(nil), labels...), maxSeries: checkMax(name, maxSeries),
	})}
}

// WithLabelValues returns the series for the label values.
func (v *GaugeVec) WithLabelValues(values ...string) *Gauge {
	return &Gauge{s: v.f.get(values)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// NewHistogramVec registers a labeled histogram family
// (cardinality-bounded like NewCounterVec).
func (r *Registry) NewHistogramVec(name, help string, buckets []float64, labels []string, maxSeries int) *HistogramVec {
	return &HistogramVec{f: r.register(&family{
		name: name, help: help, kind: kindHistogram, buckets: checkBuckets(name, buckets),
		labels: append([]string(nil), labels...), maxSeries: checkMax(name, maxSeries),
	})}
}

// WithLabelValues returns the series for the label values.
func (v *HistogramVec) WithLabelValues(values ...string) *Histogram {
	return &Histogram{f: v.f, s: v.f.get(values)}
}

func checkMax(name string, maxSeries int) int {
	if maxSeries <= 0 {
		panic(fmt.Sprintf("obs: metric %s needs a positive label cardinality bound", name))
	}
	return maxSeries
}

func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %s needs at least one bucket bound", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s buckets not strictly ascending", name))
		}
	}
	return append([]float64(nil), buckets...)
}

// ExpBuckets returns n strictly ascending bounds starting at start and
// multiplying by factor — the standard shape for latency histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets are the default seconds-unit bounds for cell/queue
// latency histograms: 1ms to ~2min, doubling.
func DurationBuckets() []float64 { return ExpBuckets(0.001, 2, 18) }
