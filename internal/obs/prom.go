package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4). Families appear in registration
// order; series within a family are sorted by label values so scrapes
// are deterministic regardless of touch order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		if f.fn != nil {
			if _, err := fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn())); err != nil {
				return err
			}
			continue
		}
		for _, s := range f.snapshot() {
			if err := f.writeSeries(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// seriesSnapshot is a consistent copy of one series' state, taken under
// the family lock so exposition never races instrument updates.
type seriesSnapshot struct {
	labels  string // rendered {k="v",...} or ""
	count   uint64
	gauge   float64
	hcounts []uint64
	hsum    float64
	hn      uint64
}

// snapshot copies every series under the locks, sorted by label values.
func (f *family) snapshot() []seriesSnapshot {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	out := make([]seriesSnapshot, 0, len(keys))
	for _, key := range keys {
		s := f.series[key]
		snap := seriesSnapshot{labels: renderLabels(f.labels, s.labelValues)}
		switch f.kind {
		case kindCounter:
			snap.count = s.count.Load()
		case kindGauge:
			snap.gauge = math.Float64frombits(s.bits.Load())
		case kindHistogram:
			s.hmu.Lock()
			snap.hcounts = append([]uint64(nil), s.hcounts...)
			snap.hsum = s.hsum
			snap.hn = s.hn
			s.hmu.Unlock()
		}
		out = append(out, snap)
	}
	f.mu.Unlock()
	return out
}

func (f *family) writeSeries(w io.Writer, s seriesSnapshot) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.count)
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.gauge))
		return err
	case kindHistogram:
		// _bucket series are cumulative; the stored counts are per-bucket.
		var cum uint64
		for i, bound := range f.buckets {
			cum += s.hcounts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLE(s.labels, formatFloat(bound)), cum); err != nil {
				return err
			}
		}
		cum += s.hcounts[len(f.buckets)]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLE(s.labels, "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatFloat(s.hsum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, s.hn)
		return err
	}
	return nil
}

// renderLabels formats {k="v",...}; empty for scalar series.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withLE splices le="bound" into a rendered label set (or starts one).
func withLE(labels, bound string) string {
	if labels == "" {
		return `{le="` + bound + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + bound + `"}`
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders values the way Prometheus clients expect:
// integers without an exponent, everything else in shortest form.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
