package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the unified debug surface every binary exposes:
//
//	/debug/vars     expvar JSON (RunReport-shaped snapshots)
//	/debug/pprof/*  the standard pprof handlers
//	/metrics        reg in Prometheus text exposition format
//
// Binaries with their own HTTP server (dynex-serve) mount these routes
// on their main mux; CLIs serve them on a side listener via ServeDebug.
func DebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	RegisterDebug(mux, reg)
	return mux
}

// RegisterDebug mounts the debug routes on an existing mux.
func RegisterDebug(mux *http.ServeMux, reg *Registry) {
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", reg.Handler())
}

// ServeDebug binds addr and serves the debug surface for the rest of
// the process lifetime. It returns the bound address (useful with
// ":0") — the CLI use case is fire-and-forget, so the server is never
// shut down and serve errors after a successful bind are dropped.
func ServeDebug(addr string, reg *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("debug listener: %w", err)
	}
	srv := &http.Server{Handler: DebugMux(reg)}
	//dynexcheck:allow goroutine-ctx deliberate process-lifetime server: ServeDebug is documented fire-and-forget, the listener dies with the process
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
