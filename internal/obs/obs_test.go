package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Jobs seen.")
	c.Add(3)
	c.Inc()
	g := r.NewGauge("queue_depth", "Queued jobs.")
	g.Set(7)
	g.Add(-2)
	r.NewGaugeFunc("uptime_seconds", "Uptime.", func() float64 { return 1.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP jobs_total Jobs seen.
# TYPE jobs_total counter
jobs_total 4
# HELP queue_depth Queued jobs.
# TYPE queue_depth gauge
queue_depth 5
# HELP uptime_seconds Uptime.
# TYPE uptime_seconds gauge
uptime_seconds 1.5
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("wall_seconds", "Cell wall time.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// 0.05 and 0.1 land in le=0.1 (bounds are inclusive), 0.5 in le=1,
	// 5 in le=10, 50 in +Inf; buckets render cumulatively.
	want := `# HELP wall_seconds Cell wall time.
# TYPE wall_seconds histogram
wall_seconds_bucket{le="0.1"} 2
wall_seconds_bucket{le="1"} 3
wall_seconds_bucket{le="10"} 4
wall_seconds_bucket{le="+Inf"} 5
wall_seconds_sum 55.65
wall_seconds_count 5
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestVecLabelsAndOverflow(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("admitted_total", "Admitted jobs.", []string{"tenant"}, 2)
	v.WithLabelValues("alice").Add(2)
	v.WithLabelValues("bob").Inc()
	// Third and fourth distinct tenants collapse into the overflow series.
	v.WithLabelValues("carol").Inc()
	v.WithLabelValues("dave").Inc()
	v.WithLabelValues("alice").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		`admitted_total{tenant="alice"} 3`,
		`admitted_total{tenant="bob"} 1`,
		`admitted_total{tenant="_overflow"} 2`,
	} {
		if !strings.Contains(got, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	if n := strings.Count(got, "admitted_total{"); n != 3 {
		t.Errorf("series count = %d, want 3 (cardinality bound)", n)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	mustPanic("duplicate name", func() { r.NewGauge("dup_total", "") })
	mustPanic("invalid name", func() { r.NewCounter("bad-name", "") })
	mustPanic("invalid label", func() { r.NewCounterVec("x_total", "", []string{"bad-label"}, 4) })
	mustPanic("zero cardinality", func() { r.NewCounterVec("y_total", "", []string{"l"}, 0) })
	mustPanic("empty buckets", func() { r.NewHistogram("z_seconds", "", nil) })
	mustPanic("unsorted buckets", func() { r.NewHistogram("w_seconds", "", []float64{2, 1}) })
	mustPanic("label arity", func() {
		v := r.NewCounterVec("arity_total", "", []string{"a", "b"}, 4)
		v.WithLabelValues("only-one")
	})
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("g", "", []string{"l"}, 4)
	v.WithLabelValues("a\"b\\c\nd").Set(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `g{l="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want+"\n") {
		t.Fatalf("escaping: got %q, want to contain %q", b.String(), want)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g_now", "")
	h := r.NewHistogram("h_seconds", "", DurationBuckets())
	v := r.NewCounterVec("v_total", "", []string{"k"}, 4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) / 1000)
				v.WithLabelValues([]string{"a", "b", "c"}[i%3]).Inc()
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { // scrape concurrently with updates
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.WritePrometheus(io.Discard)
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("one_total", "").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "one_total 1\n") {
		t.Errorf("body missing counter:\n%s", body)
	}
}

func TestServeDebugSurface(t *testing.T) {
	reg := NewRegistry()
	reg.NewCounter("srv_total", "").Add(9)
	addr, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]string{
		"/metrics":    "srv_total 9",
		"/debug/vars": "cmdline",
	} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s: body missing %q:\n%s", path, want, body)
		}
	}
	// pprof index answers; don't pull a profile in tests.
	resp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index: status %d", resp.StatusCode)
	}
}
