package obs

import (
	"strings"
	"testing"
)

func spanFixture() []Span {
	return []Span{
		{ID: 1, Kind: KindJob, Name: "sweep", StartMS: 0, DurMS: 100},
		{ID: 2, Parent: 1, Kind: KindCell, Name: "gcc/4096/16/dm", StartMS: 1, DurMS: 40},
		{ID: 3, Parent: 1, Kind: KindCell, Name: "gcc/4096/16/de", StartMS: 2, DurMS: 90},
		{ID: 4, Parent: 2, Kind: KindAttempt, Name: "attempt 1", StartMS: 1, DurMS: 40},
		{ID: 5, Parent: 3, Kind: KindAttempt, Name: "attempt 1", StartMS: 2, DurMS: 30},
		{ID: 6, Parent: 3, Kind: KindAttempt, Name: "attempt 2", StartMS: 40, DurMS: 52},
		{ID: 7, Parent: 1, Kind: KindCheckpoint, Name: "checkpoint", StartMS: 45, DurMS: 2},
	}
}

func TestBuildTreeAndCriticalPath(t *testing.T) {
	root, err := BuildTree(spanFixture())
	if err != nil {
		t.Fatal(err)
	}
	if root.ID != 1 || len(root.Children) != 3 {
		t.Fatalf("root = %d with %d children, want 1 with 3", root.ID, len(root.Children))
	}
	// Children sorted by start time.
	order := []uint64{2, 3, 7}
	for i, c := range root.Children {
		if c.ID != order[i] {
			t.Errorf("child[%d] = %d, want %d", i, c.ID, order[i])
		}
	}
	path := CriticalPath(root)
	var ids []uint64
	for _, n := range path {
		ids = append(ids, n.ID)
	}
	// Job → slowest cell (de, ends at 92) → its slowest attempt (2, ends at 92).
	want := []uint64{1, 3, 6}
	if len(ids) != len(want) {
		t.Fatalf("critical path = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("critical path = %v, want %v", ids, want)
		}
	}
}

func TestBuildTreeErrors(t *testing.T) {
	cases := []struct {
		name  string
		spans []Span
		want  string
	}{
		{"empty", nil, "no spans"},
		{"zero id", []Span{{ID: 0, Name: "x"}}, "zero ID"},
		{"dup id", []Span{{ID: 1}, {ID: 1}}, "duplicate span ID"},
		{"missing parent", []Span{{ID: 1}, {ID: 2, Parent: 9}}, "missing parent"},
		{"two roots", []Span{{ID: 1}, {ID: 2}}, "multiple root spans"},
		{"no root", []Span{{ID: 1, Parent: 2}, {ID: 2, Parent: 1}}, "no root"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := BuildTree(tc.spans)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}
