package obs

import (
	"fmt"
	"sort"
)

// Span kinds, mirroring the run hierarchy: one job span roots the run,
// cells hang off the job, attempts off their cell, and checkpoint saves
// off the job (they serialize whole-run state, not one cell's).
const (
	KindJob        = "job"
	KindCell       = "cell"
	KindAttempt    = "attempt"
	KindCheckpoint = "checkpoint"
)

// Span is one timed node in a run's trace tree. IDs are allocated by
// the telemetry collector (monotonic per run, 1 = the job span); Parent
// is 0 only on the root. Times are milliseconds since run start, the
// same clock as the JSONL events' at_ms.
type Span struct {
	ID      uint64
	Parent  uint64
	Kind    string
	Name    string
	StartMS float64
	DurMS   float64
}

// End returns the span's end time on the run clock.
func (s Span) End() float64 { return s.StartMS + s.DurMS }

// Node is a span with its resolved children, ordered by start time.
type Node struct {
	Span
	Children []*Node
}

// BuildTree resolves parent links into a tree, validating what the
// golden tests pin: IDs unique, parents resolvable, exactly one root,
// no cycles (every span reachable from the root).
func BuildTree(spans []Span) (*Node, error) {
	if len(spans) == 0 {
		return nil, fmt.Errorf("obs: no spans")
	}
	nodes := make(map[uint64]*Node, len(spans))
	for _, s := range spans {
		if s.ID == 0 {
			return nil, fmt.Errorf("obs: span %q has zero ID", s.Name)
		}
		if _, dup := nodes[s.ID]; dup {
			return nil, fmt.Errorf("obs: duplicate span ID %d", s.ID)
		}
		nodes[s.ID] = &Node{Span: s}
	}
	var root *Node
	for _, n := range nodes {
		if n.Parent == 0 {
			if root != nil {
				return nil, fmt.Errorf("obs: multiple root spans (%d and %d)", root.ID, n.ID)
			}
			root = n
			continue
		}
		p, ok := nodes[n.Parent]
		if !ok {
			return nil, fmt.Errorf("obs: span %d references missing parent %d", n.ID, n.Parent)
		}
		p.Children = append(p.Children, n)
	}
	if root == nil {
		return nil, fmt.Errorf("obs: no root span")
	}
	reached := 0
	var walk func(*Node)
	var cyc error
	seen := make(map[uint64]bool, len(nodes))
	walk = func(n *Node) {
		if seen[n.ID] {
			cyc = fmt.Errorf("obs: span %d visited twice (cycle)", n.ID)
			return
		}
		seen[n.ID] = true
		reached++
		sort.Slice(n.Children, func(i, j int) bool {
			a, b := n.Children[i], n.Children[j]
			if a.StartMS != b.StartMS {
				return a.StartMS < b.StartMS
			}
			return a.ID < b.ID
		})
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	if cyc != nil {
		return nil, cyc
	}
	if reached != len(nodes) {
		return nil, fmt.Errorf("obs: %d of %d spans unreachable from root", len(nodes)-reached, len(nodes))
	}
	return root, nil
}

// CriticalPath walks from the root to a leaf, at each level descending
// into the child that finishes last — the chain that bounded the run's
// wall time. For a parallel sweep this names the job's slowest cell and
// that cell's slowest attempt.
func CriticalPath(root *Node) []*Node {
	path := []*Node{root}
	n := root
	for len(n.Children) > 0 {
		last := n.Children[0]
		for _, c := range n.Children[1:] {
			if c.End() > last.End() || (c.End() == last.End() && c.ID < last.ID) {
				last = c
			}
		}
		path = append(path, last)
		n = last
	}
	return path
}
