package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cache"
)

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "ckpt.jsonl")
}

// TestRoundTrip checks records survive a close/reopen cycle.
func TestRoundTrip(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Fingerprint: "aa", Label: "gcc/1024/4/dm", Stats: cache.Stats{Accesses: 100, Misses: 7}, Attempts: 1, WallNS: 12345},
		{Fingerprint: "bb", Label: "gcc/1024/4/de", Stats: cache.Stats{Accesses: 100, Misses: 5}, Attempts: 2},
		{Fingerprint: "cc", Label: "fig03", Payload: "rendered table\nwith lines"},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", j2.Len(), len(recs))
	}
	for _, want := range recs {
		got, ok := j2.Lookup(want.Fingerprint)
		if !ok || got != want {
			t.Errorf("Lookup(%s) = %+v, %v; want %+v", want.Fingerprint, got, ok, want)
		}
	}
	if _, ok := j2.Lookup("nope"); ok {
		t.Error("Lookup of unknown fingerprint succeeded")
	}
}

// TestTornTail checks a crash mid-write (partial final line) loses only
// that record: the good prefix loads, the tail is truncated away, and
// appends continue cleanly at a record boundary.
func TestTornTail(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Fingerprint: "aa", Label: "one"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Fingerprint: "bb", Label: "two"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: a record that never got its newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"fp":"cc","label":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 2 {
		t.Fatalf("Len after torn tail = %d, want 2", j2.Len())
	}
	if _, ok := j2.Lookup("cc"); ok {
		t.Error("torn record resurrected")
	}
	// The tail must be gone from disk and appends must land cleanly.
	if err := j2.Append(Record{Fingerprint: "dd", Label: "four"}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "torn") {
		t.Errorf("torn tail still on disk:\n%s", data)
	}
	j3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	for _, fp := range []string{"aa", "bb", "dd"} {
		if _, ok := j3.Lookup(fp); !ok {
			t.Errorf("record %s lost after torn-tail recovery", fp)
		}
	}
}

// TestCorruptLine checks a non-JSON line poisons only itself and what
// follows, like a torn tail.
func TestCorruptLine(t *testing.T) {
	path := tmpJournal(t)
	good := `{"fp":"aa","label":"one"}` + "\n"
	bad := "!!! not json !!!\n" + `{"fp":"bb","label":"after"}` + "\n"
	if err := os.WriteFile(path, []byte(good+bad), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (good prefix only)", j.Len())
	}
	if _, ok := j.Lookup("bb"); ok {
		t.Error("record after corruption should not load (prefix semantics)")
	}
}

// TestDuplicateLatestWins checks re-journaled cells (at-least-once) keep
// the newest record.
func TestDuplicateLatestWins(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Fingerprint: "aa", Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Fingerprint: "aa", Attempts: 3}); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Errorf("Len = %d, want 1", j.Len())
	}
	j.Close()
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rec, _ := j2.Lookup("aa"); rec.Attempts != 3 {
		t.Errorf("latest record lost: %+v", rec)
	}
}

// TestSyncEvery checks batched fsync still flushes every record to the
// file (durability batching must not delay visibility).
func TestSyncEvery(t *testing.T) {
	path := tmpJournal(t)
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SyncEvery = 8
	for _, fp := range []string{"aa", "bb", "cc"} {
		if err := j.Append(Record{Fingerprint: fp}); err != nil {
			t.Fatal(err)
		}
	}
	// Not yet Synced or Closed: the lines are flushed (crash loses at most
	// what the OS had not written, torn-tail recovery handles the rest).
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(data), "\n"); got != 3 {
		t.Errorf("flushed %d lines, want 3", got)
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	j.Close()
}

// TestAppendValidation checks fingerprints are mandatory.
func TestAppendValidation(t *testing.T) {
	j, err := Open(tmpJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(Record{Label: "anonymous"}); err == nil {
		t.Error("Append without fingerprint succeeded")
	}
}

// TestFingerprint checks determinism, sensitivity, and the length-prefix
// defense against concatenation collisions.
func TestFingerprint(t *testing.T) {
	if Fingerprint("a", "b") != Fingerprint("a", "b") {
		t.Error("Fingerprint not deterministic")
	}
	if Fingerprint("a", "b") == Fingerprint("a", "c") {
		t.Error("Fingerprint insensitive to parts")
	}
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Error("Fingerprint collides across part boundaries")
	}
	if Fingerprint() == Fingerprint("") {
		t.Error("Fingerprint() == Fingerprint(\"\")")
	}
	if len(Fingerprint("x")) != 32 {
		t.Errorf("Fingerprint length = %d, want 32 hex chars", len(Fingerprint("x")))
	}
}
