// Package checkpoint journals completed simulation results so an
// interrupted sweep can resume without re-simulating finished cells.
//
// A journal is a JSONL file: one Record per line, keyed by a
// deterministic cell fingerprint (label + geometry + policy id + stream
// digest — whatever determines the cell's outcome). Writes are
// append-only, flushed per record, and fsync'd every SyncEvery records,
// so after a crash the file is a valid prefix of the run; a torn final
// line (the crash landed mid-write) is discarded and truncated away on
// reopen.
//
// Guarantees, as DESIGN.md's failure model states them:
//
//   - The journal is at-least-once: a cell whose result was computed but
//     not yet durable when the process died is re-simulated on resume.
//   - Resumed output is exactly-once: simulations are deterministic, so a
//     re-simulated cell reproduces its record bit-for-bit, and a caller
//     that emits results in cell order (cmd/dynex-sweep's CSV) produces
//     byte-identical output to an uninterrupted run.
package checkpoint

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/cache"
)

// Record is one journaled cell result.
type Record struct {
	// Fingerprint identifies the cell across runs; see Fingerprint.
	Fingerprint string `json:"fp"`
	// Label echoes the cell's human-readable label.
	Label string `json:"label,omitempty"`
	// Stats is the simulation outcome for engine-cell journals.
	Stats cache.Stats `json:"stats,omitempty"`
	// Attempts echoes the engine's attempt count for the cell.
	Attempts int `json:"attempts,omitempty"`
	// WallNS is the cell's wall-clock time in nanoseconds (informational;
	// a resumed run reports the original simulation's time).
	WallNS int64 `json:"wall_ns,omitempty"`
	// Payload holds opaque caller data for journals whose unit of work is
	// not an engine cell (cmd/dynex-experiments journals each rendered
	// experiment here).
	Payload string `json:"payload,omitempty"`
}

// Fingerprint derives a deterministic identity from the parts that
// determine a cell's outcome. Parts are length-prefixed before hashing,
// so ("ab","c") and ("a","bc") do not collide, and the digest is stable
// across runs and platforms.
func Fingerprint(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:%s|", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Journal is an append-only JSONL record store with crash recovery. All
// methods are goroutine-safe; Append is typically called from the
// engine's serialized OnResult callback.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	recs    map[string]Record
	pending int // appends since the last fsync

	// SyncEvery is the number of appends per fsync batch; <= 0 (and the
	// default) means every record is durable before Append returns.
	SyncEvery int
}

// Open opens or creates the journal at path, loading every complete
// record already present. A torn or corrupt tail — the signature of a
// crash mid-write — is truncated away so appends resume at a record
// boundary; duplicate fingerprints keep the latest record (the journal is
// at-least-once).
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	j := &Journal{f: f, recs: map[string]Record{}}
	good, err := j.load()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: reading %s: %w", path, err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: truncating torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	j.w = bufio.NewWriter(f)
	return j, nil
}

// load reads the journal, filling recs from every complete record, and
// returns the byte offset where the last complete record ends.
func (j *Journal) load() (int64, error) {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return 0, err
	}
	var off int64
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			break // torn tail: line never finished
		}
		var rec Record
		if err := json.Unmarshal(data[:nl], &rec); err != nil || rec.Fingerprint == "" {
			break // corrupt line: treat it and everything after as torn
		}
		j.recs[rec.Fingerprint] = rec
		off += int64(nl) + 1
		data = data[nl+1:]
	}
	return off, nil
}

// Len returns the number of distinct records loaded or appended.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// Lookup returns the journaled record for a fingerprint.
func (j *Journal) Lookup(fp string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.recs[fp]
	return rec, ok
}

// Append journals one record: the line is written and flushed to the
// file, and fsync'd once the current batch reaches SyncEvery records.
func (j *Journal) Append(rec Record) error {
	if rec.Fingerprint == "" {
		return errors.New("checkpoint: record needs a fingerprint")
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(line); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := j.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	j.recs[rec.Fingerprint] = rec
	j.pending++
	if j.pending >= j.syncEvery() {
		return j.syncLocked()
	}
	return j.w.Flush()
}

func (j *Journal) syncEvery() int {
	if j.SyncEvery <= 0 {
		return 1
	}
	return j.SyncEvery
}

// Sync forces any batched records to disk.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	j.pending = 0
	return nil
}

// Close syncs and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	syncErr := j.syncLocked()
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return syncErr
}
