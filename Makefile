# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race cover bench bench-report experiments fuzz faults fmt vet lint serve-smoke

# `race` is part of the default verify: the parallel simulation engine
# (internal/engine) must stay race-clean, and CI enforces the same set.
all: build vet lint test race serve-smoke

build:
	go build ./...

vet:
	go vet ./...

# dynexcheck is the repo's own static-analysis pass (DESIGN.md §9, §14):
# determinism of the simulation core, exhaustive FSM switches, passive
# telemetry hooks, context-aware sleeps, %w error wrapping, the
# batch-kernel stats rule (DESIGN.md §11), and the flow-sensitive
# checks — lock discipline, goroutine lifetime, atomic/direct access
# mixing, and //dynexcheck:hot allocation-freedom. The gofmt -s -l
# step fails on any file that needs (re)formatting. CI times this
# target against a 120s budget.
lint:
	go run ./cmd/dynexcheck
	@unformatted=$$(gofmt -s -l .); \
	if [ -n "$$unformatted" ]; then echo "gofmt -s -l:"; echo "$$unformatted"; exit 1; fi

fmt:
	gofmt -s -w .

test:
	go test ./...

race:
	go test -race ./...

cover:
	go test ./internal/... -coverprofile=cover.out && go tool cover -func=cover.out | tail -1

bench:
	go test -bench=. -benchmem .

# Machine-readable run telemetry for the committed BENCH_10.json: a
# standard sweep with -report (see DESIGN.md §8). The grid is the
# column-kernel showcase (DESIGN.md §15): one synthesized gcc stream
# feeds 50 direct-mapped geometry cells, and each 10-cell power-of-two
# size column retires in a single stream pass, so the sweep is priced
# at roughly one decode per reference per (line, policy) pair instead
# of one pass per cell. Run the same command with -multisim=off for
# the per-cell batch-kernel baseline (~190M refs/sec on the reference
# box; BENCH_8's 16-cell mixed-policy grid recorded ~157M). CI's
# bench-smoke job runs the same target and asserts the JSON parses.
bench-report:
	go run ./cmd/dynex-sweep -bench gcc -refs 2000000 \
		-sizes 1024,2048,4096,8192,16384,32768,65536,131072,262144,524288 \
		-lines 4,8,16,32,64 \
		-policies dm -report BENCH_10.json > /dev/null

# Regenerate every paper figure (writes experiments_1m.txt).
experiments:
	go run ./cmd/dynex-experiments -refs 1000000 | tee experiments_1m.txt

fuzz:
	go test -fuzz FuzzFSMInvariants -fuzztime 30s ./internal/core/
	go test -fuzz FuzzFileReader -fuzztime 30s ./internal/trace/
	go test -fuzz FuzzRoundTrip -fuzztime 30s ./internal/trace/

# End-to-end crash-safety smoke for dynex-serve (DESIGN.md §12): start
# the service (race-enabled build), submit a job, SIGTERM it mid-run,
# restart over the same data directory, and assert the served CSV is
# byte-identical to a direct dynex-sweep run of the same grid with no
# lost or duplicated cells. CI runs the same script.
serve-smoke:
	sh scripts/serve_smoke.sh

# Fault-injection suite: once with the fixed default seed (the set CI
# covers), once with a random seed. The seed is printed so a randomized
# failure replays exactly with `go test ./internal/faultinject -faultseed=N`.
faults:
	go test -count=1 ./internal/faultinject/
	@seed=$$(od -An -N4 -tu4 /dev/urandom | tr -d ' '); \
	echo "randomized run: -faultseed=$$seed"; \
	go test -count=1 ./internal/faultinject/ -faultseed=$$seed
